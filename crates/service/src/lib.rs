#![warn(missing_docs)]

//! Concurrent query-serving subsystem for similar-subtrajectory search.
//!
//! The paper's setting is *online*: queries arrive continuously and the
//! splitting algorithms exist to answer them at interactive latency
//! (§3.1). This crate turns the offline library into an embeddable,
//! concurrent query engine plus a wire front-end:
//!
//! | module | contents |
//! |--------|----------|
//! | [`engine`] | [`QueryEngine`]: worker pool, MPSC queue, micro-batching, graceful shutdown; [`Corpus`]: single vs. sharded corpus snapshots; [`EngineHandle`]: epoch-versioned hot-swap cell ([`QueryEngine::swap_snapshot`] = live reload); bulkheads: panic-isolated dispatch, worker supervision, bounded admission with deadlines; completion-based submission ([`QueryEngine::submit_with_completion`]) for non-blocking callers |
//! | `batcher` (private) | the shared micro-batcher: windowed queue drain that recovers cold-path batching on multi-worker pools |
//! | `reactor` (private) | readiness-polled serve loop (epoll via the vendored `polling` shim): 10k+ connections on one thread, pipelined out-of-order responses by wire-v2 `"id"` |
//! | [`fault`] | named fault-injection points for chaos testing (`SIMSUB_FAULTS`, admin `configure`); zero-cost when disarmed |
//! | [`query`] | request/response model, canonical query hash |
//! | [`cache`] | O(1) LRU result cache with epoch-stamped entries |
//! | [`stats`] | qps / p50 / p99 / hit-rate / swap / prune / audit accounting over [`metrics_registry`] primitives |
//! | [`metrics_registry`] | dependency-free counters, gauges, mergeable power-of-two histograms, Prometheus-style text exposition |
//! | [`trace`] | per-query stage traces (`"trace":true` on wire v2) and the slow-query log record |
//! | `audit` (private) | sampled online quality auditor: re-runs ExactS on served answers, feeds the AR/MR/RR gauges |
//! | [`server`] | newline-delimited JSON over TCP (`simsub serve`), wire protocol v1+v2 with the admin namespace (`reload` / `configure` / `info` / `metrics`) |
//! | [`json`] | dependency-free JSON parse/serialize, [`json::ProtocolVersion`] envelope rules |
//!
//! Answers are bit-identical to the offline paths: a cache hit replays a
//! previously computed `TrajectoryDb::top_k` answer for a canonically
//! equal request, and a miss runs the same algorithms through
//! `TrajectoryDb::top_k_batch` (asserted equivalent by tests).
//!
//! ```
//! use simsub_core::ExactS;
//! use simsub_data::{generate, DatasetSpec};
//! use simsub_index::TrajectoryDb;
//! use simsub_measures::Dtw;
//! use simsub_service::{
//!     AlgoSpec, CorpusSnapshot, EngineConfig, MeasureSpec, QueryEngine, QueryRequest,
//! };
//!
//! let corpus = generate(&DatasetSpec::porto(), 24, 7);
//! let db = TrajectoryDb::build(corpus).into_shared();
//! let engine = QueryEngine::start(
//!     CorpusSnapshot::new(db.clone()),
//!     EngineConfig { workers: 2, ..EngineConfig::default() },
//! );
//!
//! let query: Vec<_> = db.get(3).unwrap().to_points()[..8].to_vec();
//! let request = QueryRequest {
//!     query: query.clone(),
//!     algo: AlgoSpec::Exact,
//!     measure: MeasureSpec::Dtw,
//!     k: 3,
//!     use_index: true,
//! };
//! let response = engine.query(request).unwrap();
//! assert_eq!(*response.results, db.top_k(&ExactS, &Dtw, &query, 3, true));
//! engine.shutdown();
//! ```

mod audit;
mod batcher;
pub mod cache;
pub mod engine;
pub mod fault;
pub mod json;
pub mod metrics_registry;
pub mod query;
mod reactor;
pub mod server;
pub mod stats;
pub mod sync;
pub mod trace;

pub use engine::{
    CompletionFn, ConfigUpdate, ConfigView, Corpus, CorpusSnapshot, EngineConfig, EngineHandle,
    EpochSnapshot, PendingQuery, QueryEngine, ServiceError, ShutdownReport, SwapReport,
};
pub use fault::{FaultPoint, FaultRegistry};
pub use json::ProtocolVersion;
pub use metrics_registry::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use polling::raise_nofile_limit;
pub use query::{AlgoSpec, MeasureSpec, QueryRequest, QueryResponse};
pub use server::{IoModel, Server, StopHandle};
pub use stats::{ServeStats, StatsSnapshot};
pub use trace::{SlowQueryRecord, TraceReport};
