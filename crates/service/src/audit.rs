//! The sampled online quality auditor: a background thread that re-runs
//! the exhaustive ExactS ranking on a configurable fraction of served
//! answers and folds the paper's §6.1 effectiveness metrics (AR/MR/RR)
//! into the serving stats as live gauges.
//!
//! Contract
//! --------
//! - Only **cold** (uncached) answers are sampled: a cache hit replays an
//!   answer already audited (or auditable) when it was computed, so
//!   re-auditing it would double-count without adding information.
//! - The audited unit is the served top-1 hit: the returned range on its
//!   data trajectory is compared against the exhaustive ranking of *that*
//!   trajectory under the request's measure — the paper's per-(T, Tq)
//!   semantics. `AR = 1.0` therefore means the engine returned the exact
//!   best subtrajectory; admissible algorithms (ExactS) must audit at
//!   1.0, splitting heuristics (PSS/POS/POS-D) at ≥ 1.0.
//! - The auditor reads from the epoch snapshot the request was **admitted
//!   under** (pinned in the sample), so a hot swap between answer and
//!   audit can neither skew the metrics nor crash the audit.
//! - Serving never blocks on auditing: samples travel over a bounded
//!   queue, overflow is dropped and counted (`audit_dropped`), and
//!   oversized trajectories are skipped the same way — the exhaustive
//!   ranking is `O(n²m)` and must not starve the auditor on a corpus
//!   with a few huge trajectories.

use crate::engine::EpochSnapshot;
use crate::query::MeasureSpec;
use crate::sync::Arc;
use simsub_core::{exhaustive_ranking, EffectivenessMetrics};
use simsub_trajectory::{Point, SubtrajRange};

/// Trajectories longer than this are not audited (the exhaustive ranking
/// enumerates all `O(n²)` subtrajectories); skips count as dropped.
const AUDIT_MAX_TRAJECTORY_POINTS: usize = 512;

/// One served answer queued for quality auditing.
pub(crate) struct AuditSample {
    /// The query as served.
    pub(crate) query: Vec<Point>,
    /// The measure the answer was computed under.
    pub(crate) measure: MeasureSpec,
    /// Data trajectory of the served top-1 hit.
    pub(crate) trajectory_id: u64,
    /// The subtrajectory range the engine returned for that hit.
    pub(crate) range: SubtrajRange,
    /// The epoch snapshot the request was admitted under; auditing reads
    /// data and models from here, never from the live handle.
    pub(crate) snapshot: Arc<EpochSnapshot>,
}

/// Runs the exhaustive re-check for one sample. `None` means the sample
/// could not be audited (trajectory gone after a reload race, model no
/// longer resolvable, or trajectory over the size cap) — callers count
/// it as dropped rather than folding anything in.
pub(crate) fn evaluate_sample(sample: &AuditSample) -> Option<EffectivenessMetrics> {
    let snapshot = sample.snapshot.snapshot();
    let measure = snapshot.measure(sample.measure).ok()?;
    let data = snapshot.corpus().trajectory_points(sample.trajectory_id)?;
    if data.is_empty() || data.len() > AUDIT_MAX_TRAJECTORY_POINTS || sample.query.is_empty() {
        return None;
    }
    let ranking = exhaustive_ranking(measure, &data, &sample.query);
    Some(EffectivenessMetrics::evaluate(&ranking, sample.range))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CorpusSnapshot, EngineHandle};
    use simsub_core::{ExactS, SubtrajSearch};
    use simsub_index::TrajectoryDb;
    use simsub_measures::Dtw;
    use simsub_trajectory::Trajectory;

    fn walk(seed: u64, len: usize) -> Vec<Point> {
        let mut x = seed as f64 * 0.13;
        let mut y = -(seed as f64) * 0.07;
        (0..len)
            .map(|i| {
                x += ((seed.wrapping_mul(31).wrapping_add(i as u64) % 17) as f64 - 8.0) * 0.1;
                y += ((seed.wrapping_mul(7).wrapping_add(i as u64) % 13) as f64 - 6.0) * 0.1;
                Point::xy(x, y)
            })
            .collect()
    }

    fn pinned(trajectories: Vec<Trajectory>) -> Arc<EpochSnapshot> {
        let snapshot = CorpusSnapshot::new(TrajectoryDb::build(trajectories).into_shared());
        EngineHandle::new(snapshot).load()
    }

    #[test]
    fn exact_answers_audit_at_ar_one() {
        let data = walk(3, 24);
        let query = walk(9, 6);
        let snapshot = pinned(vec![Trajectory::new(0, data.clone()).unwrap()]);
        // Serve the answer the engine would: ExactS top-1 on trajectory 0.
        let served = ExactS.search(&Dtw, &data, &query);
        let sample = AuditSample {
            query,
            measure: MeasureSpec::Dtw,
            trajectory_id: 0,
            range: served.range,
            snapshot,
        };
        let metrics = evaluate_sample(&sample).expect("auditable");
        assert!(
            (metrics.ar - 1.0).abs() < 1e-9,
            "ExactS must audit at AR 1.0, got {}",
            metrics.ar
        );
        assert!((metrics.mr - 1.0).abs() < 1e-9);
        assert!(metrics.rr > 0.0 && metrics.rr <= 1.0);
    }

    #[test]
    fn suboptimal_answers_audit_above_one() {
        let data = walk(5, 20);
        let query = walk(11, 5);
        let snapshot = pinned(vec![Trajectory::new(0, data.clone()).unwrap()]);
        let best = ExactS.search(&Dtw, &data, &query);
        // A deliberately different range can only rank same-or-worse.
        let worse = if best.range.start == 0 && best.range.end == 0 {
            SubtrajRange::new(data.len() - 1, data.len() - 1)
        } else {
            SubtrajRange::new(0, 0)
        };
        let sample = AuditSample {
            query,
            measure: MeasureSpec::Dtw,
            trajectory_id: 0,
            range: worse,
            snapshot,
        };
        let metrics = evaluate_sample(&sample).expect("auditable");
        assert!(metrics.ar >= 1.0);
        assert!(metrics.mr >= 1.0);
    }

    #[test]
    fn unauditable_samples_are_none() {
        let snapshot = pinned(vec![Trajectory::new(0, walk(1, 8)).unwrap()]);
        // Unknown trajectory id: the corpus was reloaded under our feet.
        let gone = AuditSample {
            query: walk(2, 4),
            measure: MeasureSpec::Dtw,
            trajectory_id: 99,
            range: SubtrajRange::new(0, 0),
            snapshot: Arc::clone(&snapshot),
        };
        assert!(evaluate_sample(&gone).is_none());

        // Oversized trajectory: skipped to keep the auditor responsive.
        let huge = pinned(vec![Trajectory::new(
            0,
            walk(4, AUDIT_MAX_TRAJECTORY_POINTS + 1),
        )
        .unwrap()]);
        let oversized = AuditSample {
            query: walk(2, 4),
            measure: MeasureSpec::Dtw,
            trajectory_id: 0,
            range: SubtrajRange::new(0, 0),
            snapshot: huge,
        };
        assert!(evaluate_sample(&oversized).is_none());
    }
}
