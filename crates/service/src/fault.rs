//! Fault injection for the serve path — the chaos-testing hooks behind
//! `tests/robustness.rs` and the `SIMSUB_FAULTS` environment hatch.
//!
//! The engine carries one [`FaultRegistry`] with a fixed set of named
//! injection points ([`FaultPoint`]). Each point is independently armed
//! with a *trigger* — a deterministic probability or an every-Nth
//! cadence — and, for the sleeping points, a duration parameter. The
//! disabled path is a single relaxed atomic load
//! ([`FaultRegistry::fire`] returns immediately when nothing is armed),
//! so production traffic pays nothing for the hooks' existence.
//!
//! ## Spec grammar
//!
//! A registry is configured from a compact spec string (the value of the
//! `SIMSUB_FAULTS` environment variable, the `--faults` serve flag, or
//! the admin `{"cmd":"configure","faults":"..."}` knob):
//!
//! ```text
//! point=trigger[:ms][,point=trigger[:ms]]...
//!
//! point   := panic_in_scan | slow_scan | drop_response
//!          | cache_lock_stall | panic_in_worker
//! trigger := p:<prob in (0,1]>   fire pseudo-randomly (deterministic
//!                                hash of the occurrence counter)
//!          | n:<N >= 1>          fire on every N-th occurrence
//! ms      := sleep duration for the sleeping points (default 10,
//!            max 60000)
//! ```
//!
//! Example: `panic_in_scan=p:0.3,slow_scan=n:7:5` panics ~30% of scans
//! and sleeps 5 ms before every 7th. The empty spec disarms everything.
//!
//! ## Injection points
//!
//! | point | effect | where |
//! |-------|--------|-------|
//! | `panic_in_scan` | panics inside the group scan (caught by the worker's `catch_unwind`; waiters get a structured `internal` error) | `process_batch` dispatch |
//! | `slow_scan` | sleeps `ms` before the group scan | `process_batch` dispatch |
//! | `drop_response` | drops an answer instead of sending it (the waiter observes a canceled request) | `respond` |
//! | `cache_lock_stall` | sleeps `ms` while holding the result-cache lock | `process_batch` pass 1 |
//! | `panic_in_worker` | panics at the top of the worker loop, *outside* the dispatch `catch_unwind` — kills the thread so the supervisor's detect-and-respawn path is exercised; fires before the queue receive, so no job is lost | `worker_loop` |
//!
//! Probability triggers are deterministic: the decision hashes the
//! point's occurrence counter (splitmix64), so a given spec replays the
//! same fault schedule on every run — chaos tests are reproducible.

use crate::metrics_registry::Counter;
use crate::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use crate::sync::Mutex;
use std::time::Duration;

/// Default sleep for the sleeping points when the spec omits `:ms`.
const DEFAULT_SLEEP_MS: u64 = 10;

/// Upper bound on a configured sleep, so a typo cannot wedge a worker
/// for minutes.
const MAX_SLEEP_MS: u64 = 60_000;

/// A named injection point. See the module docs for what each one does
/// and where it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// Panic inside the group scan (caught; waiters get `internal`).
    PanicInScan,
    /// Sleep before the group scan.
    SlowScan,
    /// Drop an answer instead of sending it.
    DropResponse,
    /// Sleep while holding the result-cache lock.
    CacheLockStall,
    /// Panic at the top of the worker loop (kills the thread; exercises
    /// the supervisor's respawn path).
    PanicInWorker,
}

/// Every injection point, in registry order.
pub const FAULT_POINTS: [FaultPoint; 5] = [
    FaultPoint::PanicInScan,
    FaultPoint::SlowScan,
    FaultPoint::DropResponse,
    FaultPoint::CacheLockStall,
    FaultPoint::PanicInWorker,
];

impl FaultPoint {
    /// The spec-grammar name of this point.
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::PanicInScan => "panic_in_scan",
            FaultPoint::SlowScan => "slow_scan",
            FaultPoint::DropResponse => "drop_response",
            FaultPoint::CacheLockStall => "cache_lock_stall",
            FaultPoint::PanicInWorker => "panic_in_worker",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultPoint::PanicInScan => 0,
            FaultPoint::SlowScan => 1,
            FaultPoint::DropResponse => 2,
            FaultPoint::CacheLockStall => 3,
            FaultPoint::PanicInWorker => 4,
        }
    }

    fn from_name(name: &str) -> Option<FaultPoint> {
        FAULT_POINTS.iter().copied().find(|p| p.name() == name)
    }

    /// True for the points whose effect is a sleep (and whose spec may
    /// carry a `:ms` parameter).
    fn sleeps(self) -> bool {
        matches!(self, FaultPoint::SlowScan | FaultPoint::CacheLockStall)
    }
}

/// Trigger modes, stored as an atomic `u8` per point.
const MODE_OFF: u8 = 0;
const MODE_PROBABILITY: u8 = 1;
const MODE_EVERY_NTH: u8 = 2;

/// One point's live state: trigger mode + threshold, sleep parameter,
/// occurrence counter, and how often it actually fired.
struct PointState {
    mode: AtomicU8,
    /// Probability as `f64` bits, or the every-Nth period.
    threshold: AtomicU64,
    sleep_ms: AtomicU64,
    /// Occurrences seen (the trigger's deterministic input).
    seen: AtomicU64,
    fired: Counter,
}

impl PointState {
    fn off() -> Self {
        Self {
            mode: AtomicU8::new(MODE_OFF),
            threshold: AtomicU64::new(0),
            sleep_ms: AtomicU64::new(DEFAULT_SLEEP_MS),
            seen: AtomicU64::new(0),
            fired: Counter::new(),
        }
    }
}

/// The engine's set of armed injection points. All state is atomic: the
/// spec can be swapped live (admin `configure`) while workers consult
/// the registry, and the fully-disarmed fast path is one relaxed load.
pub struct FaultRegistry {
    armed: AtomicBool,
    points: [PointState; FAULT_POINTS.len()],
    /// Echo of the spec currently applied (for `info`/`configure`).
    spec: Mutex<String>,
}

impl Default for FaultRegistry {
    fn default() -> Self {
        Self::disarmed()
    }
}

impl FaultRegistry {
    /// A registry with every point off.
    pub fn disarmed() -> Self {
        Self {
            armed: AtomicBool::new(false),
            points: std::array::from_fn(|_| PointState::off()),
            spec: Mutex::new(String::new()),
        }
    }

    /// Parses and applies `spec` atomically enough for chaos testing:
    /// each point's trigger is replaced in one pass (no partial update
    /// on parse errors — the spec is validated before anything is
    /// stored). The empty spec disarms every point.
    pub fn set_spec(&self, spec: &str) -> Result<(), String> {
        let parsed = parse_spec(spec)?;
        for (index, point) in self.points.iter().enumerate() {
            let entry = parsed
                .iter()
                .find(|(p, _, _)| p.index() == index)
                .map(|&(_, trigger, ms)| (trigger, ms));
            match entry {
                Some((Trigger::Probability(p), ms)) => {
                    point.threshold.store(p.to_bits(), Ordering::Relaxed); // ordering: relaxed — armed's SeqCst store below publishes this
                    point.sleep_ms.store(ms, Ordering::Relaxed); // ordering: relaxed — armed's SeqCst store below publishes this
                    point.mode.store(MODE_PROBABILITY, Ordering::Relaxed); // ordering: relaxed — armed's SeqCst store below publishes this
                }
                Some((Trigger::EveryNth(n), ms)) => {
                    point.threshold.store(n, Ordering::Relaxed); // ordering: relaxed — armed's SeqCst store below publishes this
                    point.sleep_ms.store(ms, Ordering::Relaxed); // ordering: relaxed — armed's SeqCst store below publishes this
                    point.mode.store(MODE_EVERY_NTH, Ordering::Relaxed); // ordering: relaxed — armed's SeqCst store below publishes this
                }
                None => point.mode.store(MODE_OFF, Ordering::Relaxed), // ordering: relaxed — disarming needs no publication
            }
        }
        *lock_recover(&self.spec) = spec.trim().to_string();
        // ordering: SeqCst, and armed last — a worker that sees the flag
        // also sees the trigger cells stored above.
        self.armed.store(!parsed.is_empty(), Ordering::SeqCst);
        Ok(())
    }

    /// The spec currently applied (empty when disarmed).
    pub fn spec(&self) -> String {
        lock_recover(&self.spec).clone()
    }

    /// True when at least one point is armed.
    pub fn armed(&self) -> bool {
        // ordering: relaxed — advisory read, display only.
        self.armed.load(Ordering::Relaxed)
    }

    /// Consults `point`'s trigger; true means the caller should inject
    /// the fault now. The fully-disarmed path is one relaxed load.
    #[inline]
    pub fn fire(&self, point: FaultPoint) -> bool {
        // ordering: relaxed — a disarm may race one in-flight fire; harmless.
        if !self.armed.load(Ordering::Relaxed) {
            return false;
        }
        self.fire_slow(point)
    }

    #[cold]
    fn fire_slow(&self, point: FaultPoint) -> bool {
        let state = &self.points[point.index()];
        // ordering: relaxed — a stale mode fires or skips one fault, never corrupts.
        let mode = state.mode.load(Ordering::Relaxed);
        if mode == MODE_OFF {
            return false;
        }
        // 1-based occurrence count: `n:3` fires on the 3rd, 6th, ...
        // ordering: relaxed — per-point counter; exact interleaving is immaterial.
        let occurrence = state.seen.fetch_add(1, Ordering::Relaxed) + 1;
        let hit = match mode {
            MODE_PROBABILITY => {
                // ordering: relaxed — published by armed before workers can get here.
                let p = f64::from_bits(state.threshold.load(Ordering::Relaxed));
                // Deterministic "randomness": hash the occurrence index so
                // a spec replays the same fault schedule every run.
                let h = splitmix64(occurrence ^ ((point.index() as u64) << 56));
                ((h >> 11) as f64 / (1u64 << 53) as f64) < p
            }
            MODE_EVERY_NTH => {
                // ordering: relaxed — published by armed before workers can get here.
                let n = state.threshold.load(Ordering::Relaxed).max(1);
                occurrence.is_multiple_of(n)
            }
            _ => false,
        };
        if hit {
            state.fired.inc();
        }
        hit
    }

    /// Sleeps for `point`'s configured duration if its trigger fires.
    /// For the sleeping points (`slow_scan`, `cache_lock_stall`).
    #[inline]
    pub fn sleep_if(&self, point: FaultPoint) {
        if self.fire(point) {
            // ordering: relaxed — published by armed before workers can get here.
            let ms = self.points[point.index()].sleep_ms.load(Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(ms));
        }
    }

    /// Panics with a recognizable message if `point`'s trigger fires.
    /// For the panicking points (`panic_in_scan`, `panic_in_worker`).
    #[inline]
    pub fn maybe_panic(&self, point: FaultPoint) {
        if self.fire(point) {
            panic!("injected fault: {}", point.name());
        }
    }

    /// `(point name, times fired)` for every point, in registry order —
    /// the metrics exposition's `simsub_fault_injections_total` series.
    pub fn fired_counts(&self) -> Vec<(String, u64)> {
        FAULT_POINTS
            .iter()
            .map(|&p| (p.name().to_string(), self.points[p.index()].fired.get()))
            .collect()
    }
}

/// Validates a fault spec without applying it anywhere — the admin
/// `configure` path checks specs up front so a bad one rejects the whole
/// update without changing any other knob.
pub fn validate_spec(spec: &str) -> Result<(), String> {
    parse_spec(spec).map(|_| ())
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Trigger {
    Probability(f64),
    EveryNth(u64),
}

/// Parses the spec grammar (see the module docs). Returns one entry per
/// armed point; duplicate point names are an error.
fn parse_spec(spec: &str) -> Result<Vec<(FaultPoint, Trigger, u64)>, String> {
    let mut out: Vec<(FaultPoint, Trigger, u64)> = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (name, rest) = part
            .split_once('=')
            .ok_or_else(|| format!("fault '{part}': expected point=trigger"))?;
        let point = FaultPoint::from_name(name.trim()).ok_or_else(|| {
            let known: Vec<&str> = FAULT_POINTS.iter().map(|p| p.name()).collect();
            format!(
                "unknown fault point '{}' (known: {})",
                name.trim(),
                known.join(", ")
            )
        })?;
        if out.iter().any(|(p, _, _)| *p == point) {
            return Err(format!("fault point '{}' given twice", point.name()));
        }
        let mut fields = rest.split(':');
        let mode = fields.next().unwrap_or("").trim();
        let value = fields
            .next()
            .ok_or_else(|| format!("fault '{part}': trigger needs a value (p:0.5 or n:3)"))?
            .trim();
        let trigger = match mode {
            "p" => {
                let p: f64 = value
                    .parse()
                    .map_err(|_| format!("fault '{part}': bad probability '{value}'"))?;
                if !p.is_finite() || !(0.0..=1.0).contains(&p) || p == 0.0 {
                    return Err(format!("fault '{part}': probability must be in (0, 1]"));
                }
                Trigger::Probability(p)
            }
            "n" => {
                let n: u64 = value
                    .parse()
                    .map_err(|_| format!("fault '{part}': bad period '{value}'"))?;
                if n == 0 {
                    return Err(format!("fault '{part}': period must be >= 1"));
                }
                Trigger::EveryNth(n)
            }
            other => {
                return Err(format!(
                    "fault '{part}': unknown trigger mode '{other}' (p or n)"
                ))
            }
        };
        let ms = match fields.next() {
            None => DEFAULT_SLEEP_MS,
            Some(ms) => {
                if !point.sleeps() {
                    return Err(format!(
                        "fault '{part}': '{}' takes no sleep parameter",
                        point.name()
                    ));
                }
                let ms: u64 = ms
                    .trim()
                    .parse()
                    .map_err(|_| format!("fault '{part}': bad sleep ms '{ms}'"))?;
                ms.min(MAX_SLEEP_MS)
            }
        };
        if fields.next().is_some() {
            return Err(format!("fault '{part}': too many ':' fields"));
        }
        out.push((point, trigger, ms));
    }
    Ok(out)
}

/// SplitMix64 — the standard 64-bit finalizer, good enough to turn a
/// counter into uniform-looking bits.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Mutex lock with poison recovery: a panic while holding the lock (the
/// whole point of fault injection) must not cascade into panics on every
/// other thread that touches it. The `lock-unwrap` lint rule bans inline
/// `unwrap`/`expect`/`unwrap_or_else` on serve-path locks, so this family
/// of helpers is the only sanctioned way to take one.
pub(crate) fn lock_recover<T>(lock: &Mutex<T>) -> crate::sync::MutexGuard<'_, T> {
    lock.lock()
        .unwrap_or_else(crate::sync::PoisonError::into_inner)
}

/// Shared-mode [`lock_recover`] for `RwLock` (see above for why poison is
/// recovered rather than propagated).
pub(crate) fn read_recover<T>(
    lock: &crate::sync::RwLock<T>,
) -> crate::sync::RwLockReadGuard<'_, T> {
    lock.read()
        .unwrap_or_else(crate::sync::PoisonError::into_inner)
}

/// Exclusive-mode [`lock_recover`] for `RwLock`.
pub(crate) fn write_recover<T>(
    lock: &crate::sync::RwLock<T>,
) -> crate::sync::RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(crate::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_is_disarmed_and_fires_nothing() {
        let reg = FaultRegistry::disarmed();
        assert!(!reg.armed());
        assert!(!reg.fire(FaultPoint::PanicInScan));
        reg.set_spec("").unwrap();
        assert!(!reg.armed());
        reg.set_spec("  ,  ").unwrap();
        assert!(!reg.armed());
        assert_eq!(reg.spec(), ",");
    }

    #[test]
    fn every_nth_fires_on_exact_cadence() {
        let reg = FaultRegistry::disarmed();
        reg.set_spec("panic_in_scan=n:3").unwrap();
        assert!(reg.armed());
        let fired: Vec<bool> = (0..9).map(|_| reg.fire(FaultPoint::PanicInScan)).collect();
        assert_eq!(
            fired,
            vec![false, false, true, false, false, true, false, false, true]
        );
        // Other points stay off.
        assert!(!reg.fire(FaultPoint::SlowScan));
        assert_eq!(reg.fired_counts()[0], ("panic_in_scan".to_string(), 3));
    }

    #[test]
    fn probability_is_deterministic_and_roughly_calibrated() {
        let a = FaultRegistry::disarmed();
        let b = FaultRegistry::disarmed();
        for reg in [&a, &b] {
            reg.set_spec("drop_response=p:0.3").unwrap();
        }
        let fire_a: Vec<bool> = (0..1000)
            .map(|_| a.fire(FaultPoint::DropResponse))
            .collect();
        let fire_b: Vec<bool> = (0..1000)
            .map(|_| b.fire(FaultPoint::DropResponse))
            .collect();
        assert_eq!(fire_a, fire_b, "probability schedule must be deterministic");
        let hits = fire_a.iter().filter(|&&f| f).count();
        assert!((200..400).contains(&hits), "p=0.3 fired {hits}/1000");
    }

    #[test]
    fn spec_parses_sleep_params_and_reconfigures_live() {
        let reg = FaultRegistry::disarmed();
        reg.set_spec("slow_scan=n:1:25,cache_lock_stall=p:1.0:5")
            .unwrap();
        assert_eq!(reg.spec(), "slow_scan=n:1:25,cache_lock_stall=p:1.0:5");
        assert!(reg.fire(FaultPoint::SlowScan));
        // Re-arming replaces the whole set: slow_scan goes off.
        reg.set_spec("panic_in_worker=n:2").unwrap();
        assert!(!reg.fire(FaultPoint::SlowScan));
        assert!(!reg.fire(FaultPoint::PanicInWorker));
        assert!(reg.fire(FaultPoint::PanicInWorker));
        // Disarm restores the zero-cost path.
        reg.set_spec("").unwrap();
        assert!(!reg.armed());
    }

    #[test]
    fn bad_specs_are_rejected_without_arming() {
        let reg = FaultRegistry::disarmed();
        for bad in [
            "nope=n:1",
            "panic_in_scan",
            "panic_in_scan=n:0",
            "panic_in_scan=p:0",
            "panic_in_scan=p:1.5",
            "panic_in_scan=p:nan",
            "panic_in_scan=x:1",
            "panic_in_scan=n:1:10",   // not a sleeping point
            "slow_scan=n:1:10:extra", // too many fields
            "slow_scan=n:1,slow_scan=n:2",
        ] {
            assert!(reg.set_spec(bad).is_err(), "accepted: {bad}");
            assert!(!reg.armed(), "bad spec armed the registry: {bad}");
        }
    }

    #[test]
    fn sleep_durations_are_capped() {
        let reg = FaultRegistry::disarmed();
        reg.set_spec("slow_scan=n:1:999999999").unwrap();
        let state = &reg.points[FaultPoint::SlowScan.index()];
        assert_eq!(state.sleep_ms.load(Ordering::Relaxed), MAX_SLEEP_MS); // ordering: relaxed — single-threaded test
    }
}
