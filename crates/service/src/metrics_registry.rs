//! Dependency-free metrics primitives: atomic counters, gauges, and
//! log-bucketed power-of-two histograms.
//!
//! Everything in this module is lock-free to record and mergeable across
//! workers, which is what lets [`crate::ServeStats`] act as a process-wide
//! metrics registry without putting a mutex on the serve hot path:
//!
//! * [`Counter`] — monotonically increasing `u64` (one `fetch_add`).
//! * [`Gauge`] — signed instantaneous value (queue depth, in-flight).
//! * [`Histogram`] — 65 power-of-two buckets; bucket `i > 0` holds values
//!   `v` with `2^(i-1) <= v < 2^i` (bucket 0 holds zero). Recording is a
//!   single `fetch_add` into one bucket plus count/sum updates; merging two
//!   histograms is a bucket-wise add, so per-worker histograms can be
//!   combined associatively. Quantiles are answered from the cumulative
//!   bucket counts with at most one bucket of error (the reported value is
//!   the bucket's inclusive upper bound, within 2x of the true quantile).
//! * [`ExpositionBuilder`] — renders Prometheus-style text exposition
//!   (`# TYPE` headers, `_bucket{le="..."}` / `_sum` / `_count` series)
//!   without any external crates.
//!
//! All atomics use [`Ordering::Relaxed`]: metrics tolerate torn cross-metric
//! views and only need eventual per-metric consistency.

use crate::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::fmt::Write as _;

/// Number of histogram buckets: one for zero plus one per bit width of a
/// `u64` value (so every `u64` lands in exactly one bucket).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing counter (single relaxed `fetch_add` to record).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter starting at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments the counter by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed); // ordering: relaxed per module contract
    }

    /// Returns the current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed) // ordering: relaxed per module contract
    }
}

/// A signed instantaneous gauge (queue depth, in-flight requests).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge starting at zero.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Adds `delta` (may be negative) to the gauge.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed); // ordering: relaxed per module contract
    }

    /// Sets the gauge to an absolute value.
    #[inline]
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed); // ordering: relaxed per module contract
    }

    /// Returns the current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed) // ordering: relaxed per module contract
    }
}

/// Returns the bucket index for a value: 0 for 0, else `bit_width(v)` so
/// that bucket `i` spans `[2^(i-1), 2^i - 1]`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (`0`, `1`, `3`, `7`, ..., `u64::MAX`).
#[inline]
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// A lock-free, mergeable histogram over power-of-two buckets.
///
/// `record` touches one bucket plus the count and sum — three relaxed
/// `fetch_add`s, no locks — so concurrent workers can share one histogram
/// or keep per-worker copies and [`Histogram::merge_from`] them later; the
/// merge is a bucket-wise add and therefore associative and commutative.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed); // ordering: relaxed per module contract
        self.count.fetch_add(1, Ordering::Relaxed); // ordering: relaxed per module contract
        self.sum.fetch_add(value, Ordering::Relaxed); // ordering: relaxed per module contract
    }

    /// Total number of recorded observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed) // ordering: relaxed per module contract
    }

    /// Sum of all recorded observations (wrapping on overflow).
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed) // ordering: relaxed per module contract
    }

    /// Adds every bucket of `other` into `self` (associative, commutative).
    pub fn merge_from(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = src.load(Ordering::Relaxed); // ordering: relaxed per module contract
            if n != 0 {
                dst.fetch_add(n, Ordering::Relaxed); // ordering: relaxed per module contract
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed); // ordering: relaxed per module contract
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed); // ordering: relaxed per module contract
    }

    /// Takes a point-in-time copy of the buckets for quantile queries and
    /// text exposition. The copy is not atomic across buckets; histograms
    /// only need eventual consistency.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)), // ordering: relaxed per module contract
            count: self.count.load(Ordering::Relaxed), // ordering: relaxed per module contract
            sum: self.sum.load(Ordering::Relaxed),     // ordering: relaxed per module contract
        }
    }

    /// Shorthand for `snapshot().quantile(q)`.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

/// A point-in-time copy of a [`Histogram`], used for quantile queries,
/// wire serialization, and Prometheus exposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_index`] for the layout).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observation count.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Returns the `q`-quantile (`0.0..=1.0`) as the inclusive upper bound
    /// of the bucket containing the target rank — at most one bucket (2x)
    /// above the true value. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty `(upper_bound, count)` bucket pairs, in ascending order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n != 0)
            .map(|(i, &n)| (bucket_upper_bound(i), n))
            .collect()
    }
}

/// Renders Prometheus-style text exposition without external crates.
///
/// Metric families are appended in call order; each emits a `# HELP` line,
/// a `# TYPE` line, and the sample series.
#[derive(Debug, Default)]
pub struct ExpositionBuilder {
    out: String,
}

impl ExpositionBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ExpositionBuilder { out: String::new() }
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Appends a counter family with a single unlabelled sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) -> &mut Self {
        self.header(name, help, "counter");
        let _ = writeln!(self.out, "{name} {value}");
        self
    }

    /// Appends a counter family with one sample per `(label_value, value)`.
    pub fn counter_per_label(
        &mut self,
        name: &str,
        help: &str,
        label: &str,
        samples: &[(String, u64)],
    ) -> &mut Self {
        self.header(name, help, "counter");
        for (label_value, value) in samples {
            let _ = writeln!(self.out, "{name}{{{label}=\"{label_value}\"}} {value}");
        }
        self
    }

    /// Appends a gauge family with a single sample. `value` is rendered
    /// with enough precision for ratios (AR/MR/RR, ns-per-cell).
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) -> &mut Self {
        self.header(name, help, "gauge");
        if value == value.trunc() && value.abs() < 1e15 {
            let _ = writeln!(self.out, "{name} {}", value as i64);
        } else {
            let _ = writeln!(self.out, "{name} {value:.6}");
        }
        self
    }

    /// Appends a histogram family: cumulative `_bucket{le="..."}` series up
    /// to the highest non-empty bucket, a `+Inf` bucket, `_sum`, `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, snap: &HistogramSnapshot) -> &mut Self {
        self.header(name, help, "histogram");
        let last = snap
            .buckets
            .iter()
            .rposition(|&n| n != 0)
            .unwrap_or(0)
            .min(HISTOGRAM_BUCKETS - 2);
        let mut cumulative = 0u64;
        for i in 0..=last {
            cumulative += snap.buckets[i];
            let le = bucket_upper_bound(i);
            let _ = writeln!(self.out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(self.out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
        let _ = writeln!(self.out, "{name}_sum {}", snap.sum);
        let _ = writeln!(self.out, "{name}_count {}", snap.count);
        self
    }

    /// Consumes the builder and returns the exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::Arc;

    #[test]
    fn values_land_in_correct_buckets() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.buckets[0], 1); // 0
        assert_eq!(snap.buckets[1], 1); // 1
        assert_eq!(snap.buckets[2], 2); // 2, 3
        assert_eq!(snap.buckets[3], 2); // 4, 7
        assert_eq!(snap.buckets[4], 1); // 8
        assert_eq!(snap.buckets[10], 1); // 1023
        assert_eq!(snap.buckets[11], 1); // 1024
        assert_eq!(snap.buckets[64], 1); // u64::MAX
        assert_eq!(snap.count, 10);
    }

    #[test]
    fn bucket_bounds_are_powers_of_two_minus_one() {
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        // Every value's bucket bound is >= the value and < 2x the value.
        for v in [1u64, 2, 3, 5, 100, 1000, 1_000_000, 1 << 40] {
            let bound = bucket_upper_bound(bucket_index(v));
            assert!(bound >= v);
            assert!(bound < v.saturating_mul(2));
        }
    }

    #[test]
    fn quantile_error_is_at_most_one_bucket() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        for (q, truth) in [(0.5, 500u64), (0.99, 990), (0.999, 999)] {
            let est = snap.quantile(q);
            // The estimate is the bucket upper bound: >= truth, < 2x truth.
            assert!(est >= truth, "q={q}: {est} < {truth}");
            assert!(est < truth * 2, "q={q}: {est} >= 2*{truth}");
        }
        assert_eq!(snap.quantile(1.0), bucket_upper_bound(bucket_index(1000)));
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.snapshot().mean(), 0.0);
    }

    #[test]
    fn merge_is_associative_and_matches_combined_recording() {
        let parts: Vec<Histogram> = (0..3).map(|_| Histogram::new()).collect();
        let combined = Histogram::new();
        for (i, v) in (0..300u64).enumerate() {
            parts[i % 3].record(v * 17 % 4096);
            combined.record(v * 17 % 4096);
        }
        // (a + b) + c
        let left = Histogram::new();
        left.merge_from(&parts[0]);
        left.merge_from(&parts[1]);
        left.merge_from(&parts[2]);
        // a + (b + c)
        let bc = Histogram::new();
        bc.merge_from(&parts[1]);
        bc.merge_from(&parts[2]);
        let right = Histogram::new();
        right.merge_from(&parts[0]);
        right.merge_from(&bc);
        assert_eq!(left.snapshot(), right.snapshot());
        assert_eq!(left.snapshot(), combined.snapshot());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 80_000);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 80_000);
        let expected_sum: u64 = (0..80_000u64).sum();
        assert_eq!(snap.sum, expected_sum);
    }

    #[test]
    fn exposition_renders_counter_gauge_histogram() {
        let h = Histogram::new();
        h.record(3);
        h.record(100);
        let mut b = ExpositionBuilder::new();
        b.counter("t_requests_total", "Requests.", 7)
            .gauge("t_queue_depth", "Depth.", 2.0)
            .histogram("t_latency_us", "Latency.", &h.snapshot());
        let text = b.finish();
        assert!(text.contains("# TYPE t_requests_total counter"));
        assert!(text.contains("t_requests_total 7"));
        assert!(text.contains("# TYPE t_queue_depth gauge"));
        assert!(text.contains("t_queue_depth 2"));
        assert!(text.contains("t_latency_us_bucket{le=\"3\"}"));
        assert!(text.contains("t_latency_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("t_latency_us_sum 103"));
        assert!(text.contains("t_latency_us_count 2"));
    }
}
