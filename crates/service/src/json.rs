//! Minimal JSON parsing and serialization for the newline-delimited wire
//! protocol. Hand-rolled because the build environment cannot fetch
//! `serde_json`; covers the full JSON grammar (objects, arrays, strings
//! with escapes incl. `\uXXXX` surrogate pairs, numbers, booleans, null)
//! but keeps the value model deliberately small: all numbers are `f64`,
//! objects preserve insertion order in a `Vec` of pairs.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs kept in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset in the input where it went wrong.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                msg: "trailing characters after value".into(),
                at: pos,
            });
        }
        Ok(value)
    }

    /// Serializes to a single-line JSON string.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Builds an object from pairs (helper for response construction).
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Version of one wire-protocol exchange. Governs both how a request
/// envelope is read and how the response envelope is rendered; the
/// normative spec lives atop [`crate::server`].
///
/// - **V1** (legacy): the line carries neither `"v"` nor `"id"` (or an
///   explicit `"v":1`). Responses are byte-compatible with pre-v2
///   servers — no envelope fields are ever added.
/// - **V2**: the line declares `"v":2`, or carries an `"id"` without a
///   `"v"` (an `id` only exists in v2, so it implies it). Responses echo
///   `"v":2`, the request's `"id"` (when given), and the engine `"epoch"`
///   the answer was computed under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolVersion {
    /// Legacy envelope-free protocol; responses stay bit-compatible.
    V1,
    /// Versioned envelope: requests may carry `"id"`, responses echo
    /// `"v"`, `"id"`, and `"epoch"`.
    V2,
}

impl ProtocolVersion {
    /// Reads the envelope of a parsed request line: its protocol version
    /// and (v2 only) its request id. Errors on an unsupported `"v"` or a
    /// non-scalar `"id"`; an `"id"` sent on an explicit `"v":1` line is
    /// ignored (v1 has no id concept).
    pub fn of_request(v: &Json) -> Result<(ProtocolVersion, Option<Json>), String> {
        let id = match v.get("id") {
            None => None,
            Some(id @ (Json::Str(_) | Json::Num(_))) => Some(id.clone()),
            Some(_) => return Err("\"id\" must be a string or a number".into()),
        };
        match v.get("v") {
            None if id.is_some() => Ok((ProtocolVersion::V2, id)),
            None => Ok((ProtocolVersion::V1, None)),
            Some(ver) => match ver.as_usize() {
                Some(1) => Ok((ProtocolVersion::V1, None)),
                Some(2) => Ok((ProtocolVersion::V2, id)),
                _ => Err(format!(
                    "unsupported protocol version {} (supported: 1, 2)",
                    ver.dump()
                )),
            },
        }
    }

    /// Wraps a response body for this version: a no-op for v1 (bit
    /// compatibility is the contract), and for v2 appends `"v":2`, the
    /// echoed `"id"` (when the request carried one), and `"epoch"` —
    /// unless the body already reports an `"epoch"` of its own (the
    /// `info`/`reload` commands do), which is authoritative.
    pub fn envelope(self, mut body: Json, id: Option<&Json>, epoch: u64) -> Json {
        match self {
            ProtocolVersion::V1 => body,
            ProtocolVersion::V2 => {
                if let Json::Obj(pairs) = &mut body {
                    pairs.push(("v".to_string(), Json::Num(2.0)));
                    if let Some(id) = id {
                        pairs.push(("id".to_string(), id.clone()));
                    }
                    if !pairs.iter().any(|(k, _)| k == "epoch") {
                        pairs.push(("epoch".to_string(), Json::Num(epoch as f64)));
                    }
                }
                body
            }
        }
    }
}

fn write_num(n: f64, out: &mut String) {
    if n.is_finite() {
        // Rust's shortest-roundtrip Display: integers print without ".0",
        // which keeps ids and counts natural on the wire.
        let _ = write!(out, "{n}");
    } else {
        // JSON has no Inf/NaN; the protocol encodes them as null.
        out.push_str("null");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn fail<T>(msg: &str, at: usize) -> Result<T, JsonError> {
    Err(JsonError {
        msg: msg.into(),
        at,
    })
}

/// Maximum container nesting the parser accepts. The parser is
/// recursive, so untrusted input like `[[[[...` would otherwise turn
/// stack depth into an attacker-controlled quantity and overflow —
/// aborting the whole process, not just the connection. 128 levels is
/// far beyond any legitimate request on this protocol.
const MAX_DEPTH: usize = 128;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return fail("unexpected end of input", *pos);
    };
    if depth >= MAX_DEPTH && matches!(b, b'{' | b'[') {
        return fail("nesting too deep", *pos);
    }
    match b {
        b'{' => parse_obj(bytes, pos, depth),
        b'[' => parse_arr(bytes, pos, depth),
        b'"' => Ok(Json::Str(parse_string(bytes, pos)?)),
        b't' => parse_lit(bytes, pos, "true", Json::Bool(true)),
        b'f' => parse_lit(bytes, pos, "false", Json::Bool(false)),
        b'n' => parse_lit(bytes, pos, "null", Json::Null),
        b'-' | b'0'..=b'9' => parse_num(bytes, pos),
        _ => fail("unexpected character", *pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        fail("invalid literal", *pos)
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ascii");
    match text.parse::<f64>() {
        Ok(n) if n.is_finite() => Ok(Json::Num(n)),
        _ => fail("invalid number", start),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return fail("unterminated string", *pos);
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return fail("unterminated escape", *pos);
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hi = parse_hex4(bytes, pos)?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX low surrogate.
                            if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                *pos += 2;
                                let lo = parse_hex4(bytes, pos)?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return fail("invalid low surrogate", *pos);
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                return fail("unpaired surrogate", *pos);
                            }
                        } else {
                            hi
                        };
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => return fail("invalid unicode escape", *pos),
                        }
                    }
                    _ => return fail("invalid escape", *pos - 1),
                }
            }
            _ => {
                // Consume one UTF-8 scalar (input is a &str, so slicing on
                // char boundaries is safe).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| JsonError {
                    msg: "invalid utf-8".into(),
                    at: *pos,
                })?;
                let c = rest.chars().next().expect("non-empty");
                if (c as u32) < 0x20 {
                    return fail("control character in string", *pos);
                }
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    if *pos + 4 > bytes.len() {
        return fail("truncated \\u escape", *pos);
    }
    let text = std::str::from_utf8(&bytes[*pos..*pos + 4])
        .ok()
        .filter(|t| t.chars().all(|c| c.is_ascii_hexdigit()));
    match text {
        Some(t) => {
            *pos += 4;
            Ok(u32::from_str_radix(t, 16).expect("validated hex"))
        }
        None => fail("invalid \\u escape", *pos),
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return fail("expected ',' or ']'", *pos),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '{'
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return fail("expected string key", *pos);
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return fail("expected ':'", *pos);
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return fail("expected ',' or '}'", *pos),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_compound_document() {
        let text =
            r#"{"query":[[1.5,-2],[3,4,5.25]],"algo":"pss","k":10,"index":true,"note":null}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("algo").unwrap().as_str(), Some("pss"));
        assert_eq!(v.get("k").unwrap().as_usize(), Some(10));
        assert_eq!(v.get("index").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("note"), Some(&Json::Null));
        let pts = v.get("query").unwrap().as_array().unwrap();
        assert_eq!(pts[0].as_array().unwrap()[1].as_f64(), Some(-2.0));
        assert_eq!(Json::parse(&v.dump()).unwrap(), v);
    }

    #[test]
    fn nesting_depth_is_capped() {
        // At the cap: parses. One past: a clean error, not a stack
        // overflow (which would abort the whole process).
        let deep_ok = format!("{}0{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&deep_ok).is_ok());
        let too_deep = format!(
            "{}0{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        let err = Json::parse(&too_deep).unwrap_err();
        assert!(err.msg.contains("nesting too deep"), "{err}");
        // Unclosed garbage at huge depth must also fail cleanly.
        let unclosed = "[{\"a\":".repeat(10_000);
        assert!(Json::parse(&unclosed).is_err());
        // Objects count toward the same budget.
        let objs = format!(
            "{}1{}",
            "{\"k\":".repeat(MAX_DEPTH + 1),
            "}".repeat(MAX_DEPTH + 1)
        );
        assert!(Json::parse(&objs)
            .unwrap_err()
            .msg
            .contains("nesting too deep"));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = Json::Str("line\nquote\" back\\slash tab\t µ ünïcode \u{1}".into());
        let parsed = Json::parse(&original.dump()).unwrap();
        assert_eq!(parsed, original);
        // Escapes produced by other writers parse too.
        let v = Json::parse(r#""a\u00e9b \ud83d\ude00 c\/d""#).unwrap();
        assert_eq!(v.as_str(), Some("aéb 😀 c/d"));
    }

    #[test]
    fn numbers_parse_and_print_cleanly() {
        for (text, want) in [
            ("0", 0.0),
            ("-12.5", -12.5),
            ("1e3", 1000.0),
            ("2.5E-1", 0.25),
        ] {
            assert_eq!(Json::parse(text).unwrap().as_f64(), Some(want));
        }
        assert_eq!(Json::Num(5.0).dump(), "5");
        assert_eq!(Json::Num(0.5).dump(), "0.5");
        assert_eq!(Json::Num(f64::NAN).dump(), "null");
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"open",
            "{\"a\":}",
            "1 2",
            "[1,]",
            "{\"a\" 1}",
            "01a",
            "\"\\q\"",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn protocol_version_of_request() {
        let case = |text: &str| ProtocolVersion::of_request(&Json::parse(text).unwrap());
        // v1: no envelope fields, or explicit v:1 (id then ignored).
        assert_eq!(case(r#"{"cmd":"ping"}"#), Ok((ProtocolVersion::V1, None)));
        assert_eq!(
            case(r#"{"v":1,"cmd":"ping"}"#),
            Ok((ProtocolVersion::V1, None))
        );
        assert_eq!(case(r#"{"v":1,"id":"x"}"#), Ok((ProtocolVersion::V1, None)));
        // v2: declared, or implied by an id.
        assert_eq!(case(r#"{"v":2}"#), Ok((ProtocolVersion::V2, None)));
        assert_eq!(
            case(r#"{"v":2,"id":7}"#),
            Ok((ProtocolVersion::V2, Some(Json::Num(7.0))))
        );
        assert_eq!(
            case(r#"{"id":"req-1"}"#),
            Ok((ProtocolVersion::V2, Some(Json::Str("req-1".into()))))
        );
        // Errors: unknown versions, non-scalar ids.
        assert!(case(r#"{"v":3}"#).is_err());
        assert!(case(r#"{"v":"2"}"#).is_err());
        assert!(case(r#"{"v":2,"id":[1]}"#).is_err());
    }

    #[test]
    fn envelope_rendering_is_version_gated() {
        let body = || obj(vec![("ok", Json::Bool(true))]);
        // v1 must stay byte-identical.
        assert_eq!(
            ProtocolVersion::V1
                .envelope(body(), Some(&Json::Str("x".into())), 5)
                .dump(),
            r#"{"ok":true}"#
        );
        // v2 appends v / id / epoch after the body fields.
        assert_eq!(
            ProtocolVersion::V2
                .envelope(body(), Some(&Json::Str("x".into())), 5)
                .dump(),
            r#"{"ok":true,"v":2,"id":"x","epoch":5}"#
        );
        assert_eq!(
            ProtocolVersion::V2.envelope(body(), None, 1).dump(),
            r#"{"ok":true,"v":2,"epoch":1}"#
        );
    }

    #[test]
    fn as_usize_guards() {
        assert_eq!(Json::Num(3.5).as_usize(), None);
        assert_eq!(Json::Num(-1.0).as_usize(), None);
        assert_eq!(Json::Num(7.0).as_usize(), Some(7));
        assert_eq!(Json::Str("7".into()).as_usize(), None);
    }
}
