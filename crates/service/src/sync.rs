//! Synchronization facade for the serve path.
//!
//! Every crate-internal use of a sync primitive imports from this module
//! instead of `std::sync` (enforced by `cargo xtask lint`, rule
//! `std-sync-import`). Normally it re-exports `std` unchanged; compiled
//! with `RUSTFLAGS="--cfg simsub_loom"` it swaps in the instrumented types
//! from the vendored loom shim, so the model-checked suite in
//! `tests/model_check.rs` can explore interleavings of the *real*
//! engine/cache/stats code, not a transliteration.
//!
//! `Arc` and `mpsc` stay `std` in both modes: `Arc` handles cross the
//! crate boundary (e.g. `simsub_index::TrajectoryDb` snapshots), and the
//! worker queue's `mpsc` channels are exercised by the protocol models at
//! a higher level. Models that want an instrumented `Arc` use
//! `loom::sync::Arc` directly.

#[cfg(simsub_loom)]
pub use loom::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
#[cfg(not(simsub_loom))]
pub use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

pub use std::sync::{mpsc, Arc, LockResult, OnceLock, PoisonError, TryLockError, TryLockResult};

/// Atomic types, instrumented under `--cfg simsub_loom`.
pub mod atomic {
    #[cfg(simsub_loom)]
    pub use loom::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicU8, AtomicUsize};
    #[cfg(not(simsub_loom))]
    pub use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicU8, AtomicUsize};

    pub use std::sync::atomic::Ordering;
}
