//! A classic Guttman R-tree (quadratic split) storing `(Mbr, u64)` entries.
//!
//! Kept deliberately standard: least-enlargement descent for inserts,
//! quadratic pick-seeds / pick-next splitting, recursive intersection
//! queries. Trajectory databases in the experiments are static after
//! loading, but inserts are incremental so the index also serves streaming
//! ingestion.

use simsub_trajectory::Mbr;

/// Maximum entries per node before a split.
const MAX_ENTRIES: usize = 16;
/// Minimum entries a split may leave in a node.
const MIN_ENTRIES: usize = 6;

#[derive(Debug, Clone)]
enum Node {
    Leaf(Vec<(Mbr, u64)>),
    Internal(Vec<(Mbr, Box<Node>)>),
}

impl Node {
    fn mbr(&self) -> Mbr {
        match self {
            Node::Leaf(entries) => entries.iter().fold(Mbr::EMPTY, |acc, (m, _)| acc.union(*m)),
            Node::Internal(children) => children
                .iter()
                .fold(Mbr::EMPTY, |acc, (m, _)| acc.union(*m)),
        }
    }

    #[allow(dead_code)]
    fn len(&self) -> usize {
        match self {
            Node::Leaf(e) => e.len(),
            Node::Internal(c) => c.len(),
        }
    }
}

/// An R-tree over 2-D rectangles with `u64` payloads (trajectory ids).
#[derive(Debug, Clone)]
pub struct RTree {
    root: Node,
    len: usize,
}

impl Default for RTree {
    fn default() -> Self {
        Self::new()
    }
}

impl RTree {
    /// An empty tree.
    pub fn new() -> Self {
        Self {
            root: Node::Leaf(Vec::new()),
            len: 0,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entry has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an entry. Empty rectangles are rejected.
    pub fn insert(&mut self, mbr: Mbr, id: u64) {
        assert!(!mbr.is_empty(), "cannot index an empty MBR");
        if let Some((left, right)) = insert_rec(&mut self.root, mbr, id) {
            // Root split: grow the tree by one level.
            let old_root = std::mem::replace(&mut self.root, Node::Leaf(Vec::new()));
            drop(old_root); // fully replaced by the two halves below
            self.root = Node::Internal(vec![
                (left.mbr(), Box::new(left)),
                (right.mbr(), Box::new(right)),
            ]);
        }
        self.len += 1;
    }

    /// Ids of all entries whose MBR intersects `query`
    /// (boundary contact counts).
    pub fn query_intersecting(&self, query: &Mbr) -> Vec<u64> {
        let mut out = Vec::new();
        collect(&self.root, query, &mut out);
        out
    }

    /// Height of the tree (1 for a sole leaf); exposed for tests and
    /// diagnostics.
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Internal(children) = node {
            h += 1;
            node = &children[0].1;
        }
        h
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        fn walk(node: &Node, is_root: bool, depth: usize, leaf_depth: &mut Option<usize>) -> Mbr {
            match node {
                Node::Leaf(entries) => {
                    match leaf_depth {
                        Some(d) => assert_eq!(*d, depth, "leaves at different depths"),
                        None => *leaf_depth = Some(depth),
                    }
                    assert!(entries.len() <= MAX_ENTRIES);
                    node.mbr()
                }
                Node::Internal(children) => {
                    assert!(children.len() <= MAX_ENTRIES);
                    if !is_root {
                        assert!(children.len() >= MIN_ENTRIES.min(2));
                    }
                    let mut acc = Mbr::EMPTY;
                    for (m, child) in children {
                        let real = walk(child, false, depth + 1, leaf_depth);
                        // Stored MBR must cover the child's true MBR.
                        assert!(m.union(real) == *m, "stale child MBR");
                        acc = acc.union(*m);
                    }
                    acc
                }
            }
        }
        let mut leaf_depth = None;
        walk(&self.root, true, 0, &mut leaf_depth);
    }
}

/// Recursive insert. Returns `Some((left, right))` when the node split.
fn insert_rec(node: &mut Node, mbr: Mbr, id: u64) -> Option<(Node, Node)> {
    match node {
        Node::Leaf(entries) => {
            entries.push((mbr, id));
            if entries.len() > MAX_ENTRIES {
                let (a, b) = quadratic_split(std::mem::take(entries));
                Some((Node::Leaf(a), Node::Leaf(b)))
            } else {
                None
            }
        }
        Node::Internal(children) => {
            // ChooseSubtree: least enlargement, ties by smaller area.
            let mut best = 0;
            let mut best_enl = f64::INFINITY;
            let mut best_area = f64::INFINITY;
            for (i, (m, _)) in children.iter().enumerate() {
                let enl = m.enlargement(mbr);
                let area = m.area();
                if enl < best_enl - 1e-12 || (enl <= best_enl + 1e-12 && area < best_area) {
                    best = i;
                    best_enl = enl;
                    best_area = area;
                }
            }
            let split = insert_rec(&mut children[best].1, mbr, id);
            children[best].0 = children[best].1.mbr();
            if let Some((left, right)) = split {
                children[best] = (left.mbr(), Box::new(left));
                children.push((right.mbr(), Box::new(right)));
                if children.len() > MAX_ENTRIES {
                    let (a, b) = quadratic_split(std::mem::take(children));
                    return Some((Node::Internal(a), Node::Internal(b)));
                }
            }
            None
        }
    }
}

/// The two halves produced by a node split.
type SplitGroups<T> = (Vec<(Mbr, T)>, Vec<(Mbr, T)>);

/// Guttman's quadratic split over any entry type carrying an MBR.
fn quadratic_split<T>(mut entries: Vec<(Mbr, T)>) -> SplitGroups<T> {
    debug_assert!(entries.len() >= 2);
    // PickSeeds: the pair wasting the most area if grouped together.
    let (mut seed_a, mut seed_b, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..entries.len() {
        for j in i + 1..entries.len() {
            let waste =
                entries[i].0.union(entries[j].0).area() - entries[i].0.area() - entries[j].0.area();
            if waste > worst {
                worst = waste;
                seed_a = i;
                seed_b = j;
            }
        }
    }
    // Remove the later index first so the earlier stays valid.
    let b_entry = entries.swap_remove(seed_b.max(seed_a));
    let a_entry = entries.swap_remove(seed_b.min(seed_a));
    let mut group_a = vec![a_entry];
    let mut group_b = vec![b_entry];
    let mut mbr_a = group_a[0].0;
    let mut mbr_b = group_b[0].0;

    while let Some(next) = pick_next(&entries, mbr_a, mbr_b) {
        let entry = entries.swap_remove(next);
        // Force-assign when one group must absorb everything remaining to
        // reach MIN_ENTRIES.
        let remaining = entries.len() + 1;
        if group_a.len() + remaining <= MIN_ENTRIES {
            mbr_a = mbr_a.union(entry.0);
            group_a.push(entry);
            continue;
        }
        if group_b.len() + remaining <= MIN_ENTRIES {
            mbr_b = mbr_b.union(entry.0);
            group_b.push(entry);
            continue;
        }
        let enl_a = mbr_a.enlargement(entry.0);
        let enl_b = mbr_b.enlargement(entry.0);
        let to_a = enl_a < enl_b
            || (enl_a == enl_b && mbr_a.area() < mbr_b.area())
            || (enl_a == enl_b && mbr_a.area() == mbr_b.area() && group_a.len() <= group_b.len());
        if to_a {
            mbr_a = mbr_a.union(entry.0);
            group_a.push(entry);
        } else {
            mbr_b = mbr_b.union(entry.0);
            group_b.push(entry);
        }
    }
    (group_a, group_b)
}

/// PickNext: the entry with the greatest difference of enlargements —
/// the most "decided" one. Returns `None` when no entries remain.
fn pick_next<T>(entries: &[(Mbr, T)], mbr_a: Mbr, mbr_b: Mbr) -> Option<usize> {
    entries
        .iter()
        .enumerate()
        .max_by(|(_, x), (_, y)| {
            let dx = (mbr_a.enlargement(x.0) - mbr_b.enlargement(x.0)).abs();
            let dy = (mbr_a.enlargement(y.0) - mbr_b.enlargement(y.0)).abs();
            dx.total_cmp(&dy)
        })
        .map(|(i, _)| i)
}

fn collect(node: &Node, query: &Mbr, out: &mut Vec<u64>) {
    match node {
        Node::Leaf(entries) => {
            for (m, id) in entries {
                if m.intersects(query) {
                    out.push(*id);
                }
            }
        }
        Node::Internal(children) => {
            for (m, child) in children {
                if m.intersects(query) {
                    collect(child, query, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_mbr(rng: &mut StdRng) -> Mbr {
        let x = rng.gen_range(-100.0..100.0);
        let y = rng.gen_range(-100.0..100.0);
        let w = rng.gen_range(0.0..20.0);
        let h = rng.gen_range(0.0..20.0);
        Mbr {
            min_x: x,
            min_y: y,
            max_x: x + w,
            max_y: y + h,
        }
    }

    #[test]
    fn empty_tree_queries_nothing() {
        let tree = RTree::new();
        assert!(tree.is_empty());
        let q = Mbr {
            min_x: -1e9,
            min_y: -1e9,
            max_x: 1e9,
            max_y: 1e9,
        };
        assert!(tree.query_intersecting(&q).is_empty());
    }

    #[test]
    fn grows_in_height_and_keeps_invariants() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut tree = RTree::new();
        for id in 0..500u64 {
            tree.insert(random_mbr(&mut rng), id);
            if id % 97 == 0 {
                tree.check_invariants();
            }
        }
        tree.check_invariants();
        assert_eq!(tree.len(), 500);
        assert!(tree.height() >= 2, "tree should have split");
        // Every entry is findable with a universal query.
        let q = Mbr {
            min_x: -1e9,
            min_y: -1e9,
            max_x: 1e9,
            max_y: 1e9,
        };
        let mut all = tree.query_intersecting(&q);
        all.sort_unstable();
        assert_eq!(all, (0..500).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot index an empty MBR")]
    fn empty_mbr_rejected() {
        let mut tree = RTree::new();
        tree.insert(Mbr::EMPTY, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn query_matches_linear_scan(seed in 0u64..500, count in 1usize..120) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut tree = RTree::new();
            let mut reference = Vec::new();
            for id in 0..count as u64 {
                let m = random_mbr(&mut rng);
                tree.insert(m, id);
                reference.push((m, id));
            }
            for _ in 0..10 {
                let q = random_mbr(&mut rng);
                let mut got = tree.query_intersecting(&q);
                got.sort_unstable();
                let mut want: Vec<u64> = reference
                    .iter()
                    .filter(|(m, _)| m.intersects(&q))
                    .map(|&(_, id)| id)
                    .collect();
                want.sort_unstable();
                prop_assert_eq!(&got, &want);
            }
        }
    }
}
