//! Grid-based inverted index — the "inverted-file based index for
//! pruning [45, 39]" alternative the paper mentions in Section 3.1
//! (Torch-style). Space is partitioned into uniform cells; each cell maps
//! to the ids of trajectories passing through it. A query's candidate set
//! is the union of the posting lists of the cells it touches.
//!
//! Compared to the MBR R-tree, the inverted grid prunes *tighter* for
//! long, thin trajectories (an MBR covers the full bounding box; postings
//! only the visited cells), at the cost of a resolution parameter.

use simsub_trajectory::{Point, Trajectory};
use std::collections::{HashMap, HashSet};

/// A uniform-grid inverted file over trajectory ids.
#[derive(Debug, Clone)]
pub struct GridIndex {
    cell_size: f64,
    postings: HashMap<(i64, i64), Vec<u64>>,
    len: usize,
}

impl GridIndex {
    /// Creates an empty index with the given cell side length
    /// (coordinate units).
    pub fn new(cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell size must be positive"
        );
        Self {
            cell_size,
            postings: HashMap::new(),
            len: 0,
        }
    }

    /// Chooses a cell size for a corpus: the mean per-trajectory MBR
    /// diagonal divided by 4 — coarse enough that postings stay short,
    /// fine enough to beat plain MBR pruning.
    pub fn auto_cell_size(corpus: &[Trajectory]) -> f64 {
        if corpus.is_empty() {
            return 1.0;
        }
        let mean_diag: f64 = corpus
            .iter()
            .map(|t| {
                let m = t.mbr();
                ((m.max_x - m.min_x).powi(2) + (m.max_y - m.min_y).powi(2)).sqrt()
            })
            .sum::<f64>()
            / corpus.len() as f64;
        (mean_diag / 4.0).max(1e-9)
    }

    #[inline]
    fn cell_of(&self, p: Point) -> (i64, i64) {
        (
            (p.x / self.cell_size).floor() as i64,
            (p.y / self.cell_size).floor() as i64,
        )
    }

    /// Cells visited by a point sequence, including cells crossed between
    /// consecutive samples (walked by interpolation so fast movers do not
    /// skip cells).
    fn cells_of(&self, points: &[Point]) -> HashSet<(i64, i64)> {
        let mut cells = HashSet::new();
        for w in points.windows(2) {
            let steps = (w[0].dist(w[1]) / self.cell_size).ceil() as usize + 1;
            for s in 0..=steps {
                let f = s as f64 / steps as f64;
                cells.insert(self.cell_of(w[0].lerp(w[1], f)));
            }
        }
        if let Some(&p) = points.first() {
            cells.insert(self.cell_of(p));
        }
        cells
    }

    /// Indexes a trajectory.
    pub fn insert(&mut self, t: &Trajectory) {
        for cell in self.cells_of(t.points()) {
            self.postings.entry(cell).or_default().push(t.id);
        }
        self.len += 1;
    }

    /// Number of indexed trajectories.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of non-empty cells (diagnostics).
    pub fn cell_count(&self) -> usize {
        self.postings.len()
    }

    /// Ids of trajectories sharing at least one cell with the query
    /// point sequence (the inverted-file candidate set), sorted and
    /// deduplicated.
    pub fn candidates(&self, query: &[Point]) -> Vec<u64> {
        let mut out: HashSet<u64> = HashSet::new();
        for cell in self.cells_of(query) {
            if let Some(ids) = self.postings.get(&cell) {
                out.extend(ids.iter().copied());
            }
        }
        let mut v: Vec<u64> = out.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Candidate set widened by `margin` coordinate units around every
    /// query cell (for near-but-not-overlapping matches).
    pub fn candidates_with_margin(&self, query: &[Point], margin: f64) -> Vec<u64> {
        let r = (margin / self.cell_size).ceil() as i64;
        let mut out: HashSet<u64> = HashSet::new();
        for (cx, cy) in self.cells_of(query) {
            for dx in -r..=r {
                for dy in -r..=r {
                    if let Some(ids) = self.postings.get(&(cx + dx, cy + dy)) {
                        out.extend(ids.iter().copied());
                    }
                }
            }
        }
        let mut v: Vec<u64> = out.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Memory diagnostic: total posting entries.
    pub fn posting_entries(&self) -> usize {
        self.postings.values().map(Vec::len).sum()
    }
}

/// Convenience: builds a grid index over a corpus with an automatic cell
/// size.
pub fn build_grid_index(corpus: &[Trajectory]) -> GridIndex {
    let mut g = GridIndex::new(GridIndex::auto_cell_size(corpus));
    for t in corpus {
        g.insert(t);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn traj(id: u64, pts: &[(f64, f64)]) -> Trajectory {
        Trajectory::new_unchecked(
            id,
            pts.iter()
                .enumerate()
                .map(|(i, &(x, y))| Point::new(x, y, i as f64))
                .collect(),
        )
    }

    #[test]
    fn query_on_own_cells_finds_trajectory() {
        let mut g = GridIndex::new(1.0);
        let t = traj(7, &[(0.5, 0.5), (3.5, 0.5)]);
        g.insert(&t);
        assert_eq!(g.candidates(t.points()), vec![7]);
        // A query in a far cell finds nothing.
        assert!(g.candidates(&[Point::xy(100.0, 100.0)]).is_empty());
    }

    #[test]
    fn interpolation_covers_crossed_cells() {
        // Two samples 10 cells apart: the connecting corridor must be
        // indexed even though no sample lies in it.
        let mut g = GridIndex::new(1.0);
        g.insert(&traj(1, &[(0.5, 0.5), (10.5, 0.5)]));
        assert_eq!(g.candidates(&[Point::xy(5.5, 0.5)]), vec![1]);
    }

    #[test]
    fn margin_widens_candidates() {
        let mut g = GridIndex::new(1.0);
        g.insert(&traj(1, &[(0.5, 0.5)]));
        let probe = [Point::xy(2.5, 0.5)];
        assert!(g.candidates(&probe).is_empty());
        assert_eq!(g.candidates_with_margin(&probe, 2.0), vec![1]);
    }

    #[test]
    fn grid_prunes_tighter_than_mbr_for_thin_trajectories() {
        // An L-shaped trajectory leaves most of its MBR empty; a query in
        // the empty corner passes the MBR test but not the grid test.
        let l_shape = traj(1, &[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0)]);
        let mut g = GridIndex::new(1.0);
        g.insert(&l_shape);
        let corner_probe = [Point::xy(1.5, 8.5)]; // inside MBR, off the path
        assert!(l_shape.mbr().contains_point(corner_probe[0]));
        assert!(g.candidates(&corner_probe).is_empty());
    }

    #[test]
    #[should_panic(expected = "cell size must be positive")]
    fn zero_cell_size_rejected() {
        let _ = GridIndex::new(0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn no_false_negatives_vs_proximity(seed in 0u64..300) {
            // Any trajectory passing within one cell of a query point must
            // be in the margin-1-cell candidate set: the grid may
            // over-approximate but never miss spatially-close data.
            let mut rng = StdRng::seed_from_u64(seed);
            let cell = 1.0;
            let mut g = GridIndex::new(cell);
            let mut trajs = Vec::new();
            for id in 0..20u64 {
                let x0 = rng.gen_range(-20.0..20.0);
                let y0 = rng.gen_range(-20.0..20.0);
                let t = traj(id, &[(x0, y0), (x0 + 2.0, y0 + 1.0), (x0 + 4.0, y0)]);
                g.insert(&t);
                trajs.push(t);
            }
            let q = [Point::xy(rng.gen_range(-20.0..20.0), rng.gen_range(-20.0..20.0))];
            let cands: std::collections::HashSet<u64> =
                g.candidates_with_margin(&q, cell).into_iter().collect();
            for t in &trajs {
                let close = t.points().iter().any(|p| p.dist(q[0]) <= cell * 0.99);
                if close {
                    prop_assert!(cands.contains(&t.id),
                        "trajectory {} within one cell but pruned", t.id);
                }
            }
        }
    }
}
