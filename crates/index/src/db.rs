//! An indexed trajectory database: the "database of plays / taxi routes"
//! the user-facing query of Section 3.1 runs against.
//!
//! Points live in a columnar [`CorpusArena`] — one contiguous SoA slab
//! per corpus, with a precomputed per-trajectory MBR table — and every
//! read path serves borrowed [`TrajView`]s into it. The AoS
//! [`Trajectory`] is the construction currency ([`TrajectoryDb::build`])
//! and the arena is the storage: a database can also be assembled
//! directly from an arena ([`TrajectoryDb::from_arena`]), which is how a
//! packed binary corpus (`simsub_data::bin_io`) reloads without ever
//! materializing per-trajectory point vectors.

use crate::rtree::RTree;
use simsub_core::{
    pruning_enabled, PruneStats, SearchWorkspace, SharedSimFloor, SubtrajSearch, TopKHeap,
    TopKResult,
};
use simsub_measures::Measure;
use simsub_trajectory::{CorpusArena, Mbr, Point, TrajView, Trajectory};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// The database is immutable after [`TrajectoryDb::build`], so concurrent
/// readers need no locking; this assertion keeps that contract honest.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TrajectoryDb>();
};

/// A database of data trajectories: a columnar [`CorpusArena`] plus an
/// R-tree over the arena's MBR table.
#[derive(Debug, Clone)]
pub struct TrajectoryDb {
    arena: CorpusArena,
    by_id: HashMap<u64, usize>,
    rtree: RTree,
}

impl TrajectoryDb {
    /// Builds the database and its index from AoS trajectories.
    ///
    /// # Panics
    /// Panics on duplicate trajectory ids.
    pub fn build(trajs: Vec<Trajectory>) -> Self {
        Self::from_arena(CorpusArena::from_trajectories(&trajs))
    }

    /// Builds the database straight from a columnar arena — the reload
    /// path for packed binary corpora: the R-tree comes from the arena's
    /// precomputed MBR table, so no point is re-read.
    ///
    /// # Panics
    /// Panics on duplicate trajectory ids (the binary loader validates
    /// them beforehand and errors instead).
    pub fn from_arena(arena: CorpusArena) -> Self {
        let mut rtree = RTree::new();
        let mut by_id = HashMap::with_capacity(arena.len());
        for slot in 0..arena.len() {
            let id = arena.id(slot);
            assert!(
                by_id.insert(id, slot).is_none(),
                "duplicate trajectory id {id}"
            );
            rtree.insert(*arena.mbr(slot), id);
        }
        Self {
            arena,
            by_id,
            rtree,
        }
    }

    /// Number of trajectories.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// True when the database holds no trajectories.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// Total number of points across all trajectories (the x-axis of
    /// Figure 4).
    pub fn total_points(&self) -> usize {
        self.arena.total_points()
    }

    /// The columnar point store (slabs, offsets, ids, MBR table).
    pub fn arena(&self) -> &CorpusArena {
        &self.arena
    }

    /// Borrowed view of the trajectory at arena `slot` (its position in
    /// the build order).
    pub fn view(&self, slot: usize) -> TrajView<'_> {
        self.arena.view(slot)
    }

    /// Iterates over all trajectories as borrowed views, in build order.
    pub fn views(&self) -> impl Iterator<Item = TrajView<'_>> {
        self.arena.iter()
    }

    /// Lookup by id.
    pub fn get(&self, id: u64) -> Option<TrajView<'_>> {
        self.by_id.get(&id).map(|&slot| self.arena.view(slot))
    }

    /// Materializes the corpus back into owned AoS trajectories
    /// (bit-exact; for tooling, re-partitioning, and tests).
    pub fn to_trajectories(&self) -> Vec<Trajectory> {
        self.arena.to_trajectories()
    }

    /// Trajectories whose MBR intersects the query MBR — the index-pruned
    /// candidate set of Section 6.2(4) — as borrowed views.
    pub fn candidates(&self, query_mbr: &Mbr) -> Vec<TrajView<'_>> {
        self.rtree
            .query_intersecting(query_mbr)
            .into_iter()
            .map(|id| self.arena.view(self.by_id[&id]))
            .collect()
    }

    /// Wraps the built database in an [`Arc`] for lock-free sharing across
    /// worker threads — the corpus-snapshot handle the serving layer
    /// (`simsub-service`) holds. The database is immutable after `build`,
    /// so clones of the `Arc` are safe concurrent readers.
    pub fn into_shared(self) -> Arc<Self> {
        Arc::new(self)
    }

    /// Ids of trajectories whose MBR intersects `query_mbr` (the pruning
    /// set of [`TrajectoryDb::candidates`], without materializing views).
    pub fn candidate_ids(&self, query_mbr: &Mbr) -> Vec<u64> {
        self.rtree.query_intersecting(query_mbr)
    }

    /// Top-k most similar subtrajectory search across the database.
    ///
    /// With `use_index`, trajectories whose MBR does not intersect the
    /// query's MBR are pruned first; exact answers can in theory be lost
    /// (rarely in practice — see §6.2(4)), which is the accepted trade-off
    /// this flag exposes. Independently, the scan itself is prune-first
    /// (see `simsub_core::bounds`) when [`pruning_enabled`] — admissible
    /// bounds skip full searches without changing any answer.
    pub fn top_k(
        &self,
        algo: &dyn SubtrajSearch,
        measure: &dyn Measure,
        query: &[Point],
        k: usize,
        use_index: bool,
    ) -> Vec<TopKResult> {
        self.top_k_with_stats(algo, measure, query, k, use_index, pruning_enabled())
            .0
    }

    /// [`TrajectoryDb::top_k`] with an explicit prune switch and the
    /// scan's [`PruneStats`]. `prune: false` is the reference path with
    /// identical answers.
    pub fn top_k_with_stats(
        &self,
        algo: &dyn SubtrajSearch,
        measure: &dyn Measure,
        query: &[Point],
        k: usize,
        use_index: bool,
        prune: bool,
    ) -> (Vec<TopKResult>, PruneStats) {
        assert!(k > 0, "k must be positive");
        let mut stats = PruneStats::default();
        let candidates = self.scan_candidate_slots(query, use_index);
        if candidates.is_empty() {
            return (Vec::new(), stats);
        }
        let mut heap = TopKHeap::new(k);
        let mut ws = SearchWorkspace::new(measure, query);
        simsub_core::scan_top_k_into(
            algo,
            &self.arena,
            &candidates,
            query,
            &mut heap,
            &mut ws,
            prune,
            None,
            &mut stats,
        );
        (heap.into_sorted_hits(), stats)
    }

    /// The candidate slots a scan visits: the R-tree intersection set
    /// with `use_index`, the whole arena otherwise.
    fn scan_candidate_slots(&self, query: &[Point], use_index: bool) -> Vec<usize> {
        if use_index {
            self.rtree
                .query_intersecting(&Mbr::of_points(query))
                .into_iter()
                .map(|id| self.by_id[&id])
                .collect()
        } else {
            (0..self.arena.len()).collect()
        }
    }

    /// Low-level fan-out entry: scans this database into a caller-owned
    /// heap/workspace (see `simsub_core::scan_top_k_into`). `ShardedDb`
    /// threads one heap and one workspace through every shard, so the
    /// running k-th similarity and the evaluator buffers carry across
    /// shard rounds.
    #[allow(clippy::too_many_arguments)] // scan state is deliberately caller-owned
    pub fn scan_top_k_into(
        &self,
        algo: &dyn SubtrajSearch,
        query: &[Point],
        use_index: bool,
        heap: &mut TopKHeap,
        ws: &mut SearchWorkspace<'_>,
        prune: bool,
        floor: Option<&SharedSimFloor>,
        stats: &mut PruneStats,
    ) {
        let candidates = self.scan_candidate_slots(query, use_index);
        simsub_core::scan_top_k_into(
            algo,
            &self.arena,
            &candidates,
            query,
            heap,
            ws,
            prune,
            floor,
            stats,
        );
    }

    /// Batched [`TrajectoryDb::top_k`]: answers every query in one outer
    /// scan of the database (see `simsub_core::scan_top_k_batch_into` for
    /// the locality argument). With `use_index`, each query keeps its own
    /// R-tree candidate set, so results are identical to the per-query
    /// path — a trajectory is evaluated for exactly the queries whose MBR
    /// it intersects, but its slab window is touched once per batch
    /// rather than once per query.
    pub fn top_k_batch(
        &self,
        algo: &dyn SubtrajSearch,
        measure: &dyn Measure,
        queries: &[&[Point]],
        k: usize,
        use_index: bool,
    ) -> Vec<Vec<TopKResult>> {
        self.top_k_batch_with_stats(algo, measure, queries, k, use_index, pruning_enabled())
            .0
    }

    /// [`TrajectoryDb::top_k_batch`] with an explicit prune switch and
    /// the batch's merged [`PruneStats`].
    pub fn top_k_batch_with_stats(
        &self,
        algo: &dyn SubtrajSearch,
        measure: &dyn Measure,
        queries: &[&[Point]],
        k: usize,
        use_index: bool,
        prune: bool,
    ) -> (Vec<Vec<TopKResult>>, PruneStats) {
        assert!(k > 0, "k must be positive");
        let mut stats = PruneStats::default();
        if self.is_empty() || queries.is_empty() {
            return (vec![Vec::new(); queries.len()], stats);
        }
        let mut heaps: Vec<TopKHeap> = queries.iter().map(|_| TopKHeap::new(k)).collect();
        let mut workspaces: Vec<SearchWorkspace<'_>> = queries
            .iter()
            .map(|q| SearchWorkspace::new(measure, q))
            .collect();
        self.scan_top_k_batch_into(
            algo,
            queries,
            &mut heaps,
            &mut workspaces,
            use_index,
            prune,
            None,
            &mut stats,
        );
        (
            heaps.into_iter().map(TopKHeap::into_sorted_hits).collect(),
            stats,
        )
    }

    /// Low-level batched fan-out entry, mirroring
    /// [`TrajectoryDb::scan_top_k_into`] for whole micro-batches.
    #[allow(clippy::too_many_arguments)] // scan state is deliberately caller-owned
    pub fn scan_top_k_batch_into(
        &self,
        algo: &dyn SubtrajSearch,
        queries: &[&[Point]],
        heaps: &mut [TopKHeap],
        workspaces: &mut [SearchWorkspace<'_>],
        use_index: bool,
        prune: bool,
        floors: Option<&[SharedSimFloor]>,
        stats: &mut PruneStats,
    ) {
        let slots: Vec<usize> = (0..self.arena.len()).collect();
        let filters: Option<Vec<HashSet<u64>>> = use_index.then(|| {
            queries
                .iter()
                .map(|q| self.candidate_ids(&Mbr::of_points(q)).into_iter().collect())
                .collect()
        });
        simsub_core::scan_top_k_batch_into(
            algo,
            &self.arena,
            &slots,
            queries,
            heaps,
            workspaces,
            filters.as_deref(),
            prune,
            floors,
            stats,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use simsub_core::ExactS;
    use simsub_measures::Dtw;

    fn walk(seed: u64, len: usize, origin: (f64, f64)) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut x, mut y) = origin;
        (0..len)
            .map(|i| {
                x += rng.gen_range(-1.0..1.0);
                y += rng.gen_range(-1.0..1.0);
                Point::new(x, y, i as f64)
            })
            .collect()
    }

    fn build_db(count: usize) -> TrajectoryDb {
        let trajs: Vec<Trajectory> = (0..count)
            .map(|i| {
                let origin = ((i % 10) as f64 * 30.0, (i / 10) as f64 * 30.0);
                Trajectory::new_unchecked(i as u64, walk(i as u64, 20, origin))
            })
            .collect();
        TrajectoryDb::build(trajs)
    }

    #[test]
    fn build_and_lookup() {
        let db = build_db(25);
        assert_eq!(db.len(), 25);
        assert_eq!(db.total_points(), 25 * 20);
        assert_eq!(db.get(7).unwrap().id, 7);
        assert!(db.get(999).is_none());
    }

    #[test]
    fn from_arena_equals_build() {
        let trajs: Vec<Trajectory> = (0..12)
            .map(|i| Trajectory::new_unchecked(i as u64, walk(i as u64, 9, (0.0, 0.0))))
            .collect();
        let a = TrajectoryDb::build(trajs.clone());
        let b = TrajectoryDb::from_arena(CorpusArena::from_trajectories(&trajs));
        let query = walk(77, 5, (0.0, 0.0));
        for use_index in [false, true] {
            assert_eq!(
                a.top_k(&ExactS, &Dtw, &query, 4, use_index),
                b.top_k(&ExactS, &Dtw, &query, 4, use_index)
            );
        }
        assert_eq!(a.to_trajectories(), trajs);
    }

    /// Regression for the sharded fan-out: a grid partitioner can hand a
    /// shard zero trajectories, so an *empty* database (empty R-tree)
    /// must answer `candidate_ids` / `candidates` / `top_k` with empty
    /// results instead of panicking.
    #[test]
    fn empty_database_answers_queries_with_nothing() {
        let db = TrajectoryDb::build(Vec::new());
        assert!(db.is_empty());
        assert_eq!(db.total_points(), 0);
        let query = walk(1, 6, (0.0, 0.0));
        let qmbr = Mbr::of_points(&query);
        assert!(db.candidate_ids(&qmbr).is_empty());
        assert!(db.candidates(&qmbr).is_empty());
        for use_index in [false, true] {
            assert!(db.top_k(&ExactS, &Dtw, &query, 3, use_index).is_empty());
            let refs = [query.as_slice()];
            let batched = db.top_k_batch(&ExactS, &Dtw, &refs, 3, use_index);
            assert_eq!(batched, vec![Vec::new()]);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate trajectory id")]
    fn duplicate_ids_rejected() {
        let t1 = Trajectory::new_unchecked(1, walk(1, 5, (0.0, 0.0)));
        let t2 = Trajectory::new_unchecked(1, walk(2, 5, (0.0, 0.0)));
        let _ = TrajectoryDb::build(vec![t1, t2]);
    }

    #[test]
    fn candidates_match_linear_mbr_filter() {
        let db = build_db(60);
        // Anchor the query on trajectory 11's points so at least one MBR
        // intersection is guaranteed.
        let query: Vec<Point> = db.get(11).unwrap().to_points()[..8].to_vec();
        let qmbr = Mbr::of_points(&query);
        let mut got: Vec<u64> = db.candidates(&qmbr).iter().map(|v| v.id).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = db
            .views()
            .enumerate()
            .filter(|(slot, _)| db.arena().mbr(*slot).intersects(&qmbr))
            .map(|(_, v)| v.id)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
        // The grid layout guarantees real pruning happens.
        assert!(got.len() < db.len());
        assert!(!got.is_empty());
    }

    #[test]
    fn indexed_topk_agrees_when_mbrs_overlap() {
        // When the query overlaps the winning trajectory's MBR, indexed
        // and unindexed top-1 agree.
        let db = build_db(40);
        let query = walk(7, 6, (0.0, 0.0)); // near trajectory 0's region
        let full = db.top_k(&ExactS, &Dtw, &query, 1, false);
        let indexed = db.top_k(&ExactS, &Dtw, &query, 1, true);
        assert_eq!(full[0].trajectory_id, indexed[0].trajectory_id);
        assert!((full[0].result.similarity - indexed[0].result.similarity).abs() < 1e-12);
    }

    #[test]
    fn batched_topk_matches_per_query() {
        let db = build_db(50);
        let queries: Vec<Vec<Point>> = (0..6)
            .map(|i| {
                let origin = ((i % 3) as f64 * 30.0, (i / 3) as f64 * 30.0);
                walk(200 + i as u64, 7, origin)
            })
            .collect();
        let query_refs: Vec<&[Point]> = queries.iter().map(Vec::as_slice).collect();
        for use_index in [false, true] {
            let batched = db.top_k_batch(&ExactS, &Dtw, &query_refs, 4, use_index);
            for (got, q) in batched.iter().zip(&queries) {
                let want = db.top_k(&ExactS, &Dtw, q, 4, use_index);
                assert_eq!(got, &want, "use_index={use_index}");
            }
        }
    }

    #[test]
    fn shared_handle_serves_concurrent_readers() {
        let db = build_db(30).into_shared();
        let query: Vec<Point> = db.get(4).unwrap().to_points()[..6].to_vec();
        let want = db.top_k(&ExactS, &Dtw, &query, 3, true);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let db = std::sync::Arc::clone(&db);
                let query = query.clone();
                std::thread::spawn(move || db.top_k(&ExactS, &Dtw, &query, 3, true))
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), want);
        }
    }

    #[test]
    fn indexed_topk_is_subset_of_candidates() {
        let db = build_db(40);
        let query = walk(8, 6, (60.0, 60.0));
        let qmbr = Mbr::of_points(&query);
        let candidate_ids: std::collections::HashSet<u64> =
            db.candidates(&qmbr).iter().map(|v| v.id).collect();
        for hit in db.top_k(&ExactS, &Dtw, &query, 5, true) {
            assert!(candidate_ids.contains(&hit.trajectory_id));
        }
    }
}
