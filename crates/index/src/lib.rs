#![warn(missing_docs)]

//! Bounding-box R-tree index over trajectory MBRs and an indexed
//! trajectory database, as used in Section 6.2(4) of the SimSub paper:
//! "It indexes the MBRs of data trajectories and prunes all those data
//! trajectories whose MBRs do not interact with the MBR of a given query
//! trajectory."
//!
//! The pruning is *lossy by design* — the most similar subtrajectory may
//! live in a trajectory whose MBR misses the query's MBR — and the paper
//! quantifies the effect (no misses for DTW/Frechet on Porto, ≤ 20% for
//! t2vec, ~20-30% time saved). [`TrajectoryDb::top_k`] exposes both the
//! indexed and the full-scan paths so the harness can reproduce Figure 4.
//!
//! For corpora too large for one worker, [`ShardedDb`] partitions the
//! database into N shards (hash or grid assignment, one R-tree each) and
//! answers `candidate_ids` / `top_k` / `top_k_batch` by per-shard fan-out
//! plus a merge that reuses the single ranking function, so results are
//! byte-identical to an unsharded [`TrajectoryDb`].

mod db;
mod grid;
mod rtree;
mod shard;

pub use db::TrajectoryDb;
pub use grid::{build_grid_index, GridIndex};
pub use rtree::RTree;
pub use shard::{PartitionerKind, ShardedDb};
