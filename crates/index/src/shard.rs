//! A partitioned trajectory corpus: N [`TrajectoryDb`] shards, each with
//! its own R-tree, behind the same query surface as a single database.
//!
//! Sharding is the first step toward corpora that stop being one worker's
//! problem: a query fans out across shards (optionally in parallel) and
//! the per-shard top-k lists are heap-merged through
//! [`sort_hits_and_truncate`] — the *same* ranking function every
//! single-database path uses — so results are byte-identical (ids,
//! scores, order) to an unsharded [`TrajectoryDb`] over the same corpus.
//! `tests/shard_equivalence.rs` asserts that contract property-style.
//!
//! Why the merge is exact
//! ----------------------
//! - The R-tree candidate test is exact MBR intersection, so the union of
//!   per-shard candidate sets equals the single-tree candidate set.
//! - Each shard's local top-k contains every hit of that shard that could
//!   rank in the global top-k, so merging the locals and re-ranking with
//!   the shared comparator (descending similarity, ties by ascending
//!   trajectory id — a total order, since ids are unique) reproduces the
//!   global answer exactly.
//!
//! Partitioners
//! ------------
//! - [`PartitionerKind::Hash`]: trajectories are spread by a mixed hash of
//!   their id. Shards stay balanced regardless of spatial skew, but every
//!   shard overlaps every region, so spatial queries touch all shards.
//! - [`PartitionerKind::Grid`]: trajectories are bucketed by the cell of
//!   their MBR center in a √N×√N grid over the corpus. Spatially tight
//!   queries then prune whole shards via the per-shard outer MBR, at the
//!   cost of skew — a grid shard can legitimately be *empty* (all data
//!   clustered elsewhere), which the fan-out must treat as "no hits", not
//!   as an error.

use crate::TrajectoryDb;
use simsub_core::{
    pruning_enabled, sort_hits_and_truncate, PruneStats, SearchWorkspace, SharedSimFloor,
    SubtrajSearch, TopKHeap, TopKResult,
};
use simsub_measures::Measure;
use simsub_trajectory::{CorpusArena, Mbr, Point, TrajView, Trajectory};
use std::sync::Arc;

/// How trajectories are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionerKind {
    /// Balanced assignment by a mixed hash of the trajectory id.
    Hash,
    /// Spatial assignment by the grid cell of the trajectory's MBR center.
    Grid,
}

impl PartitionerKind {
    /// Stable name used by the CLI and reports ("hash" / "grid").
    pub fn name(&self) -> &'static str {
        match self {
            PartitionerKind::Hash => "hash",
            PartitionerKind::Grid => "grid",
        }
    }
}

impl std::str::FromStr for PartitionerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "hash" => Ok(PartitionerKind::Hash),
            "grid" => Ok(PartitionerKind::Grid),
            other => Err(format!("unknown partitioner '{other}' (hash|grid)")),
        }
    }
}

/// A corpus partitioned into [`TrajectoryDb`] shards. Immutable after
/// [`ShardedDb::build`], like the single database (same `Send + Sync`
/// contract).
#[derive(Debug, Clone)]
pub struct ShardedDb {
    shards: Vec<TrajectoryDb>,
    /// Union of member-trajectory MBRs per shard; [`Mbr::EMPTY`] for an
    /// empty shard, which intersects nothing and so is pruned from every
    /// indexed fan-out for free.
    shard_mbrs: Vec<Mbr>,
    kind: PartitionerKind,
    len: usize,
    total_points: usize,
}

const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardedDb>();
};

impl ShardedDb {
    /// Partitions `trajs` into `shard_count` databases.
    ///
    /// # Panics
    /// Panics when `shard_count` is zero or on duplicate trajectory ids
    /// (same contract as [`TrajectoryDb::build`]).
    pub fn build(trajs: Vec<Trajectory>, shard_count: usize, kind: PartitionerKind) -> Self {
        Self::from_arena(CorpusArena::from_trajectories(&trajs), shard_count, kind)
    }

    /// Partitions a columnar arena into `shard_count` databases — the
    /// reload path for packed binary corpora. Each shard gets its own
    /// contiguous sub-arena ([`CorpusArena::gather`]); the partitioners
    /// read ids and MBR centers straight from the arena tables, so the
    /// resulting layout is bitwise identical to
    /// [`ShardedDb::build`] over the same corpus.
    ///
    /// # Panics
    /// Panics when `shard_count` is zero or on duplicate trajectory ids.
    pub fn from_arena(arena: CorpusArena, shard_count: usize, kind: PartitionerKind) -> Self {
        assert!(shard_count >= 1, "need at least one shard");
        // Duplicate ids across shards are impossible only if they were
        // unique corpus-wide: check before partitioning.
        let mut seen = std::collections::HashSet::with_capacity(arena.len());
        for &id in arena.ids() {
            assert!(seen.insert(id), "duplicate trajectory id {id}");
        }
        let assignment: Vec<usize> = match kind {
            PartitionerKind::Hash => arena
                .ids()
                .iter()
                .map(|&id| (mix64(id) % shard_count as u64) as usize)
                .collect(),
            PartitionerKind::Grid => grid_assignment(&arena, shard_count),
        };
        let mut buckets: Vec<Vec<usize>> = (0..shard_count).map(|_| Vec::new()).collect();
        for (slot, shard) in assignment.into_iter().enumerate() {
            buckets[shard].push(slot);
        }
        let shards: Vec<TrajectoryDb> = buckets
            .into_iter()
            .map(|slots| TrajectoryDb::from_arena(arena.gather(&slots)))
            .collect();
        let shard_mbrs = shards
            .iter()
            .map(|s| {
                s.arena()
                    .mbrs()
                    .iter()
                    .fold(Mbr::EMPTY, |acc, &mbr| acc.union(mbr))
            })
            .collect();
        let len = shards.iter().map(TrajectoryDb::len).sum();
        let total_points = shards.iter().map(TrajectoryDb::total_points).sum();
        Self {
            shards,
            shard_mbrs,
            kind,
            len,
            total_points,
        }
    }

    /// Number of shards (including empty ones).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The partitioner this layout was built with.
    pub fn partitioner(&self) -> PartitionerKind {
        self.kind
    }

    /// The shard databases, in shard order.
    pub fn shards(&self) -> &[TrajectoryDb] {
        &self.shards
    }

    /// Total trajectories across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no shard holds a trajectory.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total points across all shards.
    pub fn total_points(&self) -> usize {
        self.total_points
    }

    /// Lookup by id across shards.
    pub fn get(&self, id: u64) -> Option<TrajView<'_>> {
        // Hash layouts know the owning shard; grid layouts probe each.
        if self.kind == PartitionerKind::Hash {
            return self.shards[(mix64(id) % self.shards.len() as u64) as usize].get(id);
        }
        self.shards.iter().find_map(|s| s.get(id))
    }

    /// Stable fingerprint of the shard layout (partitioner + shard
    /// count). Serving layers fold this into result-cache keys so entries
    /// computed under one layout can never be replayed under another —
    /// the invariant snapshot hot-swap will rely on. `0` is reserved for
    /// the unsharded layout.
    pub fn layout_version(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let kind_tag = match self.kind {
            PartitionerKind::Hash => 1u64,
            PartitionerKind::Grid => 2u64,
        };
        for v in [1u64, kind_tag, self.shards.len() as u64] {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        h | 1 // never collides with the reserved unsharded version 0
    }

    /// Wraps the built sharded corpus in an [`Arc`] for lock-free sharing
    /// across worker threads (mirrors [`TrajectoryDb::into_shared`]).
    pub fn into_shared(self) -> Arc<Self> {
        Arc::new(self)
    }

    /// Ids of trajectories whose MBR intersects `query_mbr`: the union of
    /// the per-shard R-tree candidate sets, sorted for determinism. As a
    /// *set* this equals [`TrajectoryDb::candidate_ids`] over the same
    /// corpus (the membership test is exact MBR intersection in both);
    /// only the traversal order differs, hence the sort.
    ///
    /// Empty shards hold an empty R-tree; querying one yields an empty
    /// set (regression-tested), so clustered grid layouts fan out safely.
    pub fn candidate_ids(&self, query_mbr: &Mbr) -> Vec<u64> {
        let mut out = Vec::new();
        for (shard, mbr) in self.shards.iter().zip(&self.shard_mbrs) {
            // An empty shard's MBR is EMPTY and intersects nothing.
            if !mbr.intersects(query_mbr) {
                continue;
            }
            out.extend(shard.candidate_ids(query_mbr));
        }
        out.sort_unstable();
        out
    }

    /// Top-k search: per-shard fan-out through *one* shared heap and
    /// evaluator workspace. The running k-th similarity established by
    /// earlier shards prunes candidates in later shards (cross-shard
    /// threshold sharing), and the evaluator buffers are allocated once
    /// for the whole fan-out. Byte-identical to [`TrajectoryDb::top_k`]
    /// over the same corpus (see module docs): the heap over the union
    /// of per-shard candidate sets is exactly the single-database top-k.
    pub fn top_k(
        &self,
        algo: &dyn SubtrajSearch,
        measure: &dyn Measure,
        query: &[Point],
        k: usize,
        use_index: bool,
    ) -> Vec<TopKResult> {
        self.top_k_with_stats(algo, measure, query, k, use_index, pruning_enabled())
            .0
    }

    /// [`ShardedDb::top_k`] with an explicit prune switch and merged
    /// [`PruneStats`] across shards.
    pub fn top_k_with_stats(
        &self,
        algo: &dyn SubtrajSearch,
        measure: &dyn Measure,
        query: &[Point],
        k: usize,
        use_index: bool,
        prune: bool,
    ) -> (Vec<TopKResult>, PruneStats) {
        assert!(k > 0, "k must be positive");
        let qmbr = Mbr::of_points(query);
        let mut stats = PruneStats::default();
        let relevant = self.relevant_shards(&qmbr, use_index);
        if relevant.is_empty() {
            return (Vec::new(), stats);
        }
        let mut heap = TopKHeap::new(k);
        let mut ws = SearchWorkspace::new(measure, query);
        for i in relevant {
            self.shards[i].scan_top_k_into(
                algo, query, use_index, &mut heap, &mut ws, prune, None, &mut stats,
            );
        }
        (heap.into_sorted_hits(), stats)
    }

    /// [`ShardedDb::top_k`] with the shard fan-out spread over up to
    /// `threads` scoped worker threads. Identical results: each worker
    /// only computes per-shard locals and the final merge is the same
    /// [`sort_hits_and_truncate`] call. Falls back to the sequential path
    /// for `threads <= 1` or a single relevant shard.
    pub fn top_k_parallel(
        &self,
        algo: &(dyn SubtrajSearch + Sync),
        measure: &dyn Measure,
        query: &[Point],
        k: usize,
        use_index: bool,
        threads: usize,
    ) -> Vec<TopKResult> {
        self.top_k_parallel_with_stats(
            algo,
            measure,
            query,
            k,
            use_index,
            threads,
            pruning_enabled(),
        )
        .0
    }

    /// [`ShardedDb::top_k_parallel`] with an explicit prune switch and
    /// merged [`PruneStats`]. Workers keep per-shard-round workspaces and
    /// heaps but publish their k-th similarity through a
    /// [`SharedSimFloor`], so one worker's progress prunes the others —
    /// the parallel form of the sequential path's cross-shard threshold.
    #[allow(clippy::too_many_arguments)] // mirrors the non-batch signature
    pub fn top_k_parallel_with_stats(
        &self,
        algo: &(dyn SubtrajSearch + Sync),
        measure: &dyn Measure,
        query: &[Point],
        k: usize,
        use_index: bool,
        threads: usize,
        prune: bool,
    ) -> (Vec<TopKResult>, PruneStats) {
        assert!(k > 0, "k must be positive");
        let qmbr = Mbr::of_points(query);
        let relevant = self.relevant_shards(&qmbr, use_index);
        if threads <= 1 || relevant.len() <= 1 {
            return self.top_k_with_stats(algo, measure, query, k, use_index, prune);
        }
        let chunk = relevant.len().div_ceil(threads);
        let floor = SharedSimFloor::new();
        let (mut hits, stats) = crossbeam::scope(|scope| {
            let floor = &floor;
            let handles: Vec<_> = relevant
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(move |_| {
                        // One heap/workspace per worker, threaded through
                        // its whole shard subset.
                        let mut heap = TopKHeap::new(k);
                        let mut ws = SearchWorkspace::new(measure, query);
                        let mut stats = PruneStats::default();
                        for &i in part {
                            self.shards[i].scan_top_k_into(
                                algo,
                                query,
                                use_index,
                                &mut heap,
                                &mut ws,
                                prune,
                                Some(floor),
                                &mut stats,
                            );
                        }
                        (heap.into_sorted_hits(), stats)
                    })
                })
                .collect();
            let mut merged = Vec::with_capacity(threads * k);
            let mut stats = PruneStats::default();
            for h in handles {
                let (local, local_stats) = h.join().expect("shard worker panicked");
                merged.extend(local);
                stats.merge(&local_stats);
            }
            (merged, stats)
        })
        .expect("scoped shard threads panicked");
        sort_hits_and_truncate(&mut hits, k);
        (hits, stats)
    }

    /// Batched top-k: every query fans out across shards, each shard
    /// answers the whole batch in one scan through *shared* per-query
    /// heaps and workspaces — the running k-th similarities carry from
    /// shard to shard exactly as in [`ShardedDb::top_k`]. Byte-identical
    /// to the single-database batch path.
    pub fn top_k_batch(
        &self,
        algo: &dyn SubtrajSearch,
        measure: &dyn Measure,
        queries: &[&[Point]],
        k: usize,
        use_index: bool,
    ) -> Vec<Vec<TopKResult>> {
        self.top_k_batch_with_stats(algo, measure, queries, k, use_index, pruning_enabled())
            .0
    }

    /// [`ShardedDb::top_k_batch`] with an explicit prune switch and
    /// merged [`PruneStats`].
    pub fn top_k_batch_with_stats(
        &self,
        algo: &dyn SubtrajSearch,
        measure: &dyn Measure,
        queries: &[&[Point]],
        k: usize,
        use_index: bool,
        prune: bool,
    ) -> (Vec<Vec<TopKResult>>, PruneStats) {
        assert!(k > 0, "k must be positive");
        let mut stats = PruneStats::default();
        if self.is_empty() || queries.is_empty() {
            return (vec![Vec::new(); queries.len()], stats);
        }
        let mut heaps: Vec<TopKHeap> = queries.iter().map(|_| TopKHeap::new(k)).collect();
        let mut workspaces: Vec<SearchWorkspace<'_>> = queries
            .iter()
            .map(|q| SearchWorkspace::new(measure, q))
            .collect();
        for shard in self.shards.iter().filter(|s| !s.is_empty()) {
            shard.scan_top_k_batch_into(
                algo,
                queries,
                &mut heaps,
                &mut workspaces,
                use_index,
                prune,
                None,
                &mut stats,
            );
        }
        (
            heaps.into_iter().map(TopKHeap::into_sorted_hits).collect(),
            stats,
        )
    }

    /// [`ShardedDb::top_k_batch`] with the shard fan-out spread over up
    /// to `threads` scoped worker threads (the serving layer's cold
    /// path on multi-core). Identical results, same merge.
    pub fn top_k_batch_parallel(
        &self,
        algo: &(dyn SubtrajSearch + Sync),
        measure: &dyn Measure,
        queries: &[&[Point]],
        k: usize,
        use_index: bool,
        threads: usize,
    ) -> Vec<Vec<TopKResult>> {
        self.top_k_batch_parallel_with_stats(
            algo,
            measure,
            queries,
            k,
            use_index,
            threads,
            pruning_enabled(),
        )
        .0
    }

    /// [`ShardedDb::top_k_batch_parallel`] with an explicit prune switch
    /// and merged [`PruneStats`]. Workers share one [`SharedSimFloor`]
    /// per query, mirroring [`ShardedDb::top_k_parallel_with_stats`].
    #[allow(clippy::too_many_arguments)] // mirrors the non-batch signature
    pub fn top_k_batch_parallel_with_stats(
        &self,
        algo: &(dyn SubtrajSearch + Sync),
        measure: &dyn Measure,
        queries: &[&[Point]],
        k: usize,
        use_index: bool,
        threads: usize,
        prune: bool,
    ) -> (Vec<Vec<TopKResult>>, PruneStats) {
        assert!(k > 0, "k must be positive");
        let populated: Vec<usize> = (0..self.shards.len())
            .filter(|&i| !self.shards[i].is_empty())
            .collect();
        if threads <= 1 || populated.len() <= 1 {
            return self.top_k_batch_with_stats(algo, measure, queries, k, use_index, prune);
        }
        let chunk = populated.len().div_ceil(threads);
        let floors: Vec<SharedSimFloor> = queries.iter().map(|_| SharedSimFloor::new()).collect();
        let mut per_query: Vec<Vec<TopKResult>> = vec![Vec::new(); queries.len()];
        let mut stats = PruneStats::default();
        let partials = crossbeam::scope(|scope| {
            let floors = floors.as_slice();
            let handles: Vec<_> = populated
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(move |_| {
                        let mut heaps: Vec<TopKHeap> =
                            queries.iter().map(|_| TopKHeap::new(k)).collect();
                        let mut workspaces: Vec<SearchWorkspace<'_>> = queries
                            .iter()
                            .map(|q| SearchWorkspace::new(measure, q))
                            .collect();
                        let mut stats = PruneStats::default();
                        for &i in part {
                            self.shards[i].scan_top_k_batch_into(
                                algo,
                                queries,
                                &mut heaps,
                                &mut workspaces,
                                use_index,
                                prune,
                                Some(floors),
                                &mut stats,
                            );
                        }
                        let local: Vec<Vec<TopKResult>> =
                            heaps.into_iter().map(TopKHeap::into_sorted_hits).collect();
                        (local, stats)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect::<Vec<_>>()
        })
        .expect("scoped shard threads panicked");
        for (partial, local_stats) in partials {
            stats.merge(&local_stats);
            for (acc, hits) in per_query.iter_mut().zip(partial) {
                acc.extend(hits);
            }
        }
        for hits in &mut per_query {
            sort_hits_and_truncate(hits, k);
        }
        (per_query, stats)
    }

    /// Shard indices a query must visit. With the index enabled, a shard
    /// whose outer MBR misses the query MBR cannot contribute a candidate
    /// (its R-tree would prune everything anyway), so it is skipped
    /// without touching its tree; empty shards have an EMPTY outer MBR
    /// and are skipped the same way. Without the index every populated
    /// shard is scanned, matching the full-scan single-database path.
    fn relevant_shards(&self, qmbr: &Mbr, use_index: bool) -> Vec<usize> {
        (0..self.shards.len())
            .filter(|&i| {
                if self.shards[i].is_empty() {
                    return false;
                }
                !use_index || self.shard_mbrs[i].intersects(qmbr)
            })
            .collect()
    }
}

/// SplitMix64 finalizer: spreads sequential ids uniformly across shards
/// (plain `id % n` would stripe adjacent ids, which is fine, but a mixed
/// hash also balances corpora with structured id gaps).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Grid assignment: bucket each trajectory by the cell of its MBR center
/// in a `gx × gy` grid (`gx·gy ≥ shard_count`) over the bounding box of
/// all centers; trailing cells fold into the last shard. Skewed corpora
/// legitimately leave some shards empty. Centers come from the arena's
/// precomputed MBR table — bitwise the values `Trajectory::mbr` yields.
fn grid_assignment(arena: &CorpusArena, shard_count: usize) -> Vec<usize> {
    if arena.is_empty() || shard_count == 1 {
        return vec![0; arena.len()];
    }
    let centers: Vec<(f64, f64)> = arena
        .mbrs()
        .iter()
        .map(|m| ((m.min_x + m.max_x) / 2.0, (m.min_y + m.max_y) / 2.0))
        .collect();
    let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
    let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &centers {
        min_x = min_x.min(x);
        min_y = min_y.min(y);
        max_x = max_x.max(x);
        max_y = max_y.max(y);
    }
    let gx = (shard_count as f64).sqrt().ceil() as usize;
    let gy = shard_count.div_ceil(gx);
    // Degenerate extents (all centers collinear or identical) collapse to
    // cell 0 along that axis instead of dividing by zero.
    let w = (max_x - min_x).max(f64::MIN_POSITIVE);
    let h = (max_y - min_y).max(f64::MIN_POSITIVE);
    centers
        .into_iter()
        .map(|(x, y)| {
            let cx = (((x - min_x) / w * gx as f64) as usize).min(gx - 1);
            let cy = (((y - min_y) / h * gy as f64) as usize).min(gy - 1);
            (cy * gx + cx).min(shard_count - 1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use simsub_core::ExactS;
    use simsub_measures::Dtw;

    fn walk(seed: u64, len: usize, origin: (f64, f64)) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut x, mut y) = origin;
        (0..len)
            .map(|i| {
                x += rng.gen_range(-1.0..1.0);
                y += rng.gen_range(-1.0..1.0);
                Point::new(x, y, i as f64)
            })
            .collect()
    }

    fn corpus(count: usize) -> Vec<Trajectory> {
        (0..count)
            .map(|i| {
                let origin = ((i % 10) as f64 * 30.0, (i / 10) as f64 * 30.0);
                Trajectory::new_unchecked(i as u64, walk(i as u64, 16, origin))
            })
            .collect()
    }

    #[test]
    fn build_preserves_corpus() {
        let trajs = corpus(30);
        let points: usize = trajs.iter().map(Trajectory::len).sum();
        for kind in [PartitionerKind::Hash, PartitionerKind::Grid] {
            let sharded = ShardedDb::build(trajs.clone(), 4, kind);
            assert_eq!(sharded.shard_count(), 4);
            assert_eq!(sharded.len(), 30);
            assert_eq!(sharded.total_points(), points);
            for id in 0..30u64 {
                assert_eq!(sharded.get(id).unwrap().id, id, "{kind:?}");
            }
            assert!(sharded.get(999).is_none());
        }
    }

    #[test]
    fn hash_partitioning_is_roughly_balanced() {
        let sharded = ShardedDb::build(corpus(200), 4, PartitionerKind::Hash);
        for shard in sharded.shards() {
            // 200/4 = 50 expected; a mixed hash stays within a loose band.
            assert!(
                (20..=80).contains(&shard.len()),
                "skewed shard: {}",
                shard.len()
            );
        }
    }

    #[test]
    fn topk_matches_single_database() {
        let trajs = corpus(40);
        let db = TrajectoryDb::build(trajs.clone());
        let query = walk(99, 8, (15.0, 15.0));
        for kind in [PartitionerKind::Hash, PartitionerKind::Grid] {
            for shards in [1, 3, 8] {
                let sharded = ShardedDb::build(trajs.clone(), shards, kind);
                for use_index in [false, true] {
                    let want = db.top_k(&ExactS, &Dtw, &query, 5, use_index);
                    let got = sharded.top_k(&ExactS, &Dtw, &query, 5, use_index);
                    assert_eq!(got, want, "{kind:?} shards={shards} index={use_index}");
                }
            }
        }
    }

    #[test]
    fn parallel_fanout_matches_sequential() {
        let trajs = corpus(50);
        let sharded = ShardedDb::build(trajs, 6, PartitionerKind::Hash);
        let query = walk(7, 7, (40.0, 20.0));
        let queries = [query.as_slice()];
        for threads in [1, 2, 4, 8] {
            for use_index in [false, true] {
                let seq = sharded.top_k(&ExactS, &Dtw, &query, 4, use_index);
                let par = sharded.top_k_parallel(&ExactS, &Dtw, &query, 4, use_index, threads);
                assert_eq!(seq, par, "threads={threads} index={use_index}");
                let seq_b = sharded.top_k_batch(&ExactS, &Dtw, &queries, 4, use_index);
                let par_b =
                    sharded.top_k_batch_parallel(&ExactS, &Dtw, &queries, 4, use_index, threads);
                assert_eq!(seq_b, par_b, "batch threads={threads} index={use_index}");
            }
        }
    }

    #[test]
    fn candidate_ids_equal_single_database_as_a_set() {
        let trajs = corpus(60);
        let db = TrajectoryDb::build(trajs.clone());
        let query = walk(11, 8, (60.0, 30.0));
        let qmbr = Mbr::of_points(&query);
        let mut want = db.candidate_ids(&qmbr);
        want.sort_unstable();
        for kind in [PartitionerKind::Hash, PartitionerKind::Grid] {
            let sharded = ShardedDb::build(trajs.clone(), 5, kind);
            assert_eq!(sharded.candidate_ids(&qmbr), want, "{kind:?}");
        }
    }

    /// Regression (clustered corpora): a grid layout where all data piles
    /// into few cells leaves other shards with *zero* trajectories — an
    /// empty R-tree. Fan-out over such a layout must yield empty
    /// candidate sets for the empty shards, not panic.
    #[test]
    fn empty_grid_shards_answer_queries() {
        // Two tight clusters, far apart: an 8-shard grid leaves most
        // shards empty.
        let mut trajs = Vec::new();
        for i in 0..6u64 {
            trajs.push(Trajectory::new_unchecked(i, walk(i, 10, (0.0, 0.0))));
            trajs.push(Trajectory::new_unchecked(
                100 + i,
                walk(100 + i, 10, (500.0, 500.0)),
            ));
        }
        let sharded = ShardedDb::build(trajs.clone(), 8, PartitionerKind::Grid);
        assert!(
            sharded.shards().iter().any(TrajectoryDb::is_empty),
            "layout should produce at least one empty shard"
        );

        // Direct probe of an empty shard's database: empty candidate set,
        // no panic.
        let empty = sharded
            .shards()
            .iter()
            .find(|s| s.is_empty())
            .expect("empty shard");
        let probe = Mbr::of_points(&walk(3, 5, (250.0, 250.0)));
        assert!(empty.candidate_ids(&probe).is_empty());

        // Full fan-out still matches the unsharded database.
        let db = TrajectoryDb::build(trajs);
        let query = walk(200, 6, (500.0, 500.0));
        for use_index in [false, true] {
            assert_eq!(
                sharded.top_k(&ExactS, &Dtw, &query, 3, use_index),
                db.top_k(&ExactS, &Dtw, &query, 3, use_index),
            );
        }
        let qmbr = Mbr::of_points(&query);
        let mut want = db.candidate_ids(&qmbr);
        want.sort_unstable();
        assert_eq!(sharded.candidate_ids(&qmbr), want);
    }

    #[test]
    fn empty_corpus_builds_and_answers() {
        let sharded = ShardedDb::build(Vec::new(), 4, PartitionerKind::Grid);
        assert!(sharded.is_empty());
        let probe = Mbr::of_points(&walk(0, 4, (0.0, 0.0)));
        assert!(sharded.candidate_ids(&probe).is_empty());
        assert!(sharded
            .top_k(&ExactS, &Dtw, &walk(0, 4, (0.0, 0.0)), 3, true)
            .is_empty());
    }

    #[test]
    fn layout_version_discriminates_layouts() {
        let trajs = corpus(10);
        let v = |shards, kind| ShardedDb::build(trajs.clone(), shards, kind).layout_version();
        assert_eq!(
            v(4, PartitionerKind::Hash),
            v(4, PartitionerKind::Hash),
            "same layout, same version"
        );
        assert_ne!(v(2, PartitionerKind::Hash), v(4, PartitionerKind::Hash));
        assert_ne!(v(4, PartitionerKind::Hash), v(4, PartitionerKind::Grid));
        assert_ne!(v(1, PartitionerKind::Hash), 0, "0 is reserved: unsharded");
    }

    #[test]
    #[should_panic(expected = "need at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedDb::build(corpus(3), 0, PartitionerKind::Hash);
    }

    #[test]
    #[should_panic(expected = "duplicate trajectory id")]
    fn duplicate_ids_rejected_across_shards() {
        // Same id twice: whichever shards they land in, the build fails.
        let t1 = Trajectory::new_unchecked(1, walk(1, 5, (0.0, 0.0)));
        let t2 = Trajectory::new_unchecked(1, walk(2, 5, (300.0, 300.0)));
        let _ = ShardedDb::build(vec![t1, t2], 4, PartitionerKind::Grid);
    }
}
