use crate::replay::{ReplayMemory, Transition};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use simsub_nn::{Activation, Adam, Mlp, MlpCache, MlpGrads};

/// Hyperparameters of the DQN agent. Defaults are exactly the paper's
/// Section 6.1 settings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DqnConfig {
    /// State dimensionality (3 for RLS: `(Θbest, Θpre, Θsuf)`; 2 when the
    /// suffix component is dropped, as for t2vec and RLS-Skip+).
    pub state_dim: usize,
    /// Number of actions (2 for RLS; `2 + k` for RLS-Skip).
    pub n_actions: usize,
    /// Hidden layer width (paper: 20 ReLU neurons).
    pub hidden_dim: usize,
    /// Reward discount rate γ (paper: 0.95).
    pub gamma: f64,
    /// Adam learning rate (paper: 0.001).
    pub learning_rate: f64,
    /// Initial exploration rate ε.
    pub epsilon_start: f64,
    /// Floor for ε (paper: 0.05).
    pub epsilon_min: f64,
    /// Multiplicative ε decay applied once per episode (paper: 0.99).
    pub epsilon_decay: f64,
    /// Replay memory capacity (paper: 2000).
    pub replay_capacity: usize,
    /// Minibatch size per gradient step.
    pub batch_size: usize,
    /// RNG seed: action sampling and minibatch sampling are deterministic
    /// given the seed.
    pub seed: u64,
}

impl DqnConfig {
    /// Paper defaults for a given state dimension and action count.
    pub fn paper(state_dim: usize, n_actions: usize) -> Self {
        Self {
            state_dim,
            n_actions,
            hidden_dim: 20,
            gamma: 0.95,
            learning_rate: 0.001,
            epsilon_start: 1.0,
            epsilon_min: 0.05,
            epsilon_decay: 0.99,
            replay_capacity: 2000,
            batch_size: 32,
            seed: 2020,
        }
    }
}

/// A frozen greedy policy: just the main network. This is what the RLS /
/// RLS-Skip *search* algorithms carry at query time, and what gets
/// serialized for model persistence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Policy {
    net: Mlp,
}

impl simsub_nn::BinaryCodec for Policy {
    fn encode(&self, enc: &mut simsub_nn::Encoder) {
        self.net.encode(enc);
    }

    fn decode(dec: &mut simsub_nn::Decoder) -> Result<Self, simsub_nn::CodecError> {
        Ok(Policy {
            net: Mlp::decode(dec)?,
        })
    }
}

impl Policy {
    /// Greedy action `argmax_a Q(s, a)`.
    pub fn greedy_action(&self, state: &[f64]) -> usize {
        argmax(&self.net.forward(state))
    }

    /// Raw Q-values for inspection.
    pub fn q_values(&self, state: &[f64]) -> Vec<f64> {
        self.net.forward(state)
    }

    /// State dimensionality the policy expects.
    pub fn state_dim(&self) -> usize {
        self.net.in_dim()
    }

    /// Number of actions the policy chooses among.
    pub fn n_actions(&self) -> usize {
        self.net.out_dim()
    }
}

fn argmax(v: &[f64]) -> usize {
    let mut best = 0;
    for i in 1..v.len() {
        if v[i] > v[best] {
            best = i;
        }
    }
    best
}

/// Deep-Q-Network agent with experience replay and a periodically synced
/// target network (Algorithm 3 of the paper).
pub struct DqnAgent {
    cfg: DqnConfig,
    main: Mlp,
    target: Mlp,
    memory: ReplayMemory,
    adam: Adam,
    epsilon: f64,
    rng: StdRng,
    // Reused buffers to keep the hot training path allocation-light.
    cache: MlpCache,
    grads: MlpGrads,
}

impl DqnAgent {
    /// Creates an agent; the Q-network is `state_dim → hidden (ReLU) →
    /// n_actions (sigmoid)` per the paper's Section 6.1.
    pub fn new(cfg: DqnConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let main = Mlp::new(
            &mut rng,
            &[cfg.state_dim, cfg.hidden_dim, cfg.n_actions],
            &[Activation::Relu, Activation::Sigmoid],
        );
        let target = main.clone();
        Self {
            memory: ReplayMemory::new(cfg.replay_capacity),
            adam: Adam::new(cfg.learning_rate),
            epsilon: cfg.epsilon_start,
            grads: MlpGrads::zeros(&main),
            cache: MlpCache::default(),
            main,
            target,
            rng,
            cfg,
        }
    }

    /// Current exploration rate.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The configuration in use.
    pub fn config(&self) -> &DqnConfig {
        &self.cfg
    }

    /// ε-greedy action selection (Algorithm 3, line 10).
    pub fn act(&mut self, state: &[f64]) -> usize {
        if self.rng.gen::<f64>() < self.epsilon {
            self.rng.gen_range(0..self.cfg.n_actions)
        } else {
            self.act_greedy(state)
        }
    }

    /// Greedy action from the main network.
    pub fn act_greedy(&self, state: &[f64]) -> usize {
        argmax(&self.main.forward(state))
    }

    /// Q-values of the main network.
    pub fn q_values(&self, state: &[f64]) -> Vec<f64> {
        self.main.forward(state)
    }

    /// Stores an experience in the replay memory (Algorithm 3, line 21).
    pub fn remember(&mut self, t: Transition) {
        debug_assert_eq!(t.state.len(), self.cfg.state_dim);
        debug_assert_eq!(t.next_state.len(), self.cfg.state_dim);
        debug_assert!(t.action < self.cfg.n_actions);
        self.memory.push(t);
    }

    /// One gradient step on a uniformly sampled minibatch
    /// (Algorithm 3, lines 22-23). Returns the minibatch MSE loss, or
    /// `None` when the memory is still empty.
    pub fn train_step(&mut self) -> Option<f64> {
        if self.memory.is_empty() {
            return None;
        }
        // Compute TD targets first (immutable borrows of memory + target).
        let batch: Vec<Transition> = self
            .memory
            .sample(&mut self.rng, self.cfg.batch_size)
            .into_iter()
            .cloned()
            .collect();
        let mut loss = 0.0;
        self.grads.zero();
        for t in &batch {
            let y = if t.terminal {
                t.reward
            } else {
                let q_next = self.target.forward(&t.next_state);
                t.reward + self.cfg.gamma * q_next[argmax(&q_next)]
            };
            let q = self.main.forward_cached(&t.state, &mut self.cache);
            let q_sa = q[t.action];
            let err = q_sa - y;
            loss += err * err;
            // dL/dQ(s,a) = 2 (Q - y); zero elsewhere.
            let mut dout = vec![0.0; self.cfg.n_actions];
            dout[t.action] = 2.0 * err;
            self.main
                .backward(&t.state, &self.cache, &dout, &mut self.grads);
        }
        let inv = 1.0 / batch.len() as f64;
        self.grads.scale(inv);
        self.main.apply_grads(&self.grads, &mut self.adam);
        Some(loss * inv)
    }

    /// Copies the main network into the target network
    /// (Algorithm 3, line 25 — end of each episode).
    pub fn sync_target(&mut self) {
        self.target.copy_from(&self.main);
    }

    /// Applies one ε decay step, flooring at `epsilon_min`.
    pub fn decay_epsilon(&mut self) {
        self.epsilon = (self.epsilon * self.cfg.epsilon_decay).max(self.cfg.epsilon_min);
    }

    /// Freezes the current main network into a standalone greedy policy.
    pub fn policy(&self) -> Policy {
        Policy {
            net: self.main.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_decays_to_floor() {
        let mut agent = DqnAgent::new(DqnConfig::paper(2, 2));
        for _ in 0..1000 {
            agent.decay_epsilon();
        }
        assert_eq!(agent.epsilon(), 0.05);
    }

    #[test]
    fn greedy_action_matches_q_argmax() {
        let agent = DqnAgent::new(DqnConfig::paper(3, 4));
        let s = [0.3, 0.5, 0.1];
        let q = agent.q_values(&s);
        let a = agent.act_greedy(&s);
        assert!(q.iter().all(|&v| v <= q[a]));
    }

    #[test]
    fn policy_is_frozen_snapshot() {
        let mut agent = DqnAgent::new(DqnConfig::paper(2, 2));
        let policy = agent.policy();
        let s = [0.2, 0.8];
        let before = policy.q_values(&s);
        // Train the agent; the frozen policy must not change.
        for i in 0..50 {
            agent.remember(Transition {
                state: vec![0.2, 0.8],
                action: i % 2,
                reward: if i % 2 == 0 { 1.0 } else { 0.0 },
                next_state: vec![0.2, 0.8],
                terminal: true,
            });
        }
        for _ in 0..100 {
            agent.train_step();
        }
        assert_eq!(policy.q_values(&s), before);
        assert_ne!(agent.q_values(&s), before);
    }

    #[test]
    fn learns_contextual_bandit() {
        // State [x]; action 0 is rewarded iff x < 0.5, action 1 iff
        // x >= 0.5. One-step episodes. The greedy policy must recover the
        // rule after training.
        let mut agent = DqnAgent::new(DqnConfig {
            learning_rate: 0.01,
            ..DqnConfig::paper(1, 2)
        });
        let mut rng = StdRng::seed_from_u64(9);
        for episode in 0..600 {
            let x: f64 = rng.gen();
            let a = agent.act(&[x]);
            let correct = usize::from(x >= 0.5);
            let r = if a == correct { 1.0 } else { 0.0 };
            agent.remember(Transition {
                state: vec![x],
                action: a,
                reward: r,
                next_state: vec![x],
                terminal: true,
            });
            agent.train_step();
            if episode % 4 == 0 {
                agent.sync_target();
            }
            agent.decay_epsilon();
        }
        let policy = agent.policy();
        let mut correct = 0;
        for i in 0..100 {
            let x = i as f64 / 100.0;
            if policy.greedy_action(&[x]) == usize::from(x >= 0.5) {
                correct += 1;
            }
        }
        assert!(correct >= 90, "bandit accuracy {correct}/100");
    }

    #[test]
    fn learns_two_step_credit_assignment() {
        // Chain MDP: states 0 → 1 → terminal. Only action 1 in state 0
        // followed by action 1 in state 1 yields reward 1 at the end.
        // Tests that the bootstrapped target propagates value backwards
        // through the target network.
        let mut agent = DqnAgent::new(DqnConfig {
            learning_rate: 0.01,
            ..DqnConfig::paper(1, 2)
        });
        // 2000 episodes: convergence on this chain depends on the ε-greedy
        // exploration stream, and the vendored StdRng (xoshiro256++) needs
        // a longer run than upstream's ChaCha12 did at 800.
        for episode in 0..2000 {
            let s0 = vec![0.0];
            let a0 = agent.act(&s0);
            let s1 = vec![1.0];
            let a1 = agent.act(&s1);
            let r = if a0 == 1 && a1 == 1 { 1.0 } else { 0.0 };
            agent.remember(Transition {
                state: s0,
                action: a0,
                reward: 0.0,
                next_state: s1.clone(),
                terminal: false,
            });
            agent.remember(Transition {
                state: s1,
                action: a1,
                reward: r,
                next_state: vec![2.0],
                terminal: true,
            });
            agent.train_step();
            agent.train_step();
            if episode % 2 == 0 {
                agent.sync_target();
            }
            agent.decay_epsilon();
        }
        let policy = agent.policy();
        assert_eq!(policy.greedy_action(&[0.0]), 1, "state 0 action");
        assert_eq!(policy.greedy_action(&[1.0]), 1, "state 1 action");
        // Q(s0, 1) should reflect discounted future reward ≈ γ·1.
        let q0 = policy.q_values(&[0.0])[1];
        assert!(q0 > 0.5, "bootstrapped value too low: {q0}");
    }

    #[test]
    fn policy_binary_roundtrip() {
        use simsub_nn::BinaryCodec;
        let agent = DqnAgent::new(DqnConfig::paper(3, 5));
        let policy = agent.policy();
        let bytes = policy.to_bytes();
        let back = Policy::from_bytes(&bytes).unwrap();
        let s = [0.1, 0.9, 0.4];
        assert_eq!(policy.q_values(&s), back.q_values(&s));
        assert_eq!(back.state_dim(), 3);
        assert_eq!(back.n_actions(), 5);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut agent = DqnAgent::new(DqnConfig::paper(1, 2));
            let mut rng = StdRng::seed_from_u64(4);
            for _ in 0..50 {
                let x: f64 = rng.gen();
                let a = agent.act(&[x]);
                agent.remember(Transition {
                    state: vec![x],
                    action: a,
                    reward: x,
                    next_state: vec![x],
                    terminal: true,
                });
                agent.train_step();
            }
            agent.q_values(&[0.5])
        };
        assert_eq!(run(), run());
    }
}
