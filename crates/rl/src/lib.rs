#![warn(missing_docs)]

//! Deep Q-Network learning with experience replay, as used by the RLS and
//! RLS-Skip algorithms (Section 5.2 / Algorithm 3 of the SimSub paper).
//!
//! The implementation follows Mnih et al. (2013/2015) with the paper's
//! specializations:
//!
//! - **main network** `Q(s, a; θ)` and **target network** `Q̂(s, a; θ⁻)`;
//!   the target is synced from the main network at the end of every
//!   episode (Algorithm 3, line 25);
//! - **replay memory** of capacity 2000 sampled uniformly (Section 6.1);
//! - **ε-greedy** exploration with ε floor 0.05 and decay 0.99;
//! - network shape 3 → 20 (ReLU) → `2 + k` (sigmoid), Adam at 0.001,
//!   discount γ = 0.95 (Section 6.1).
//!
//! The crate is generic over state dimension and action count so the same
//! agent drives RLS (2 actions), RLS-Skip (`2 + k` actions) and the
//! suffix-free RLS-Skip+ variant (2-dimensional states).

mod dqn;
mod replay;

pub use dqn::{DqnAgent, DqnConfig, Policy};
pub use replay::{ReplayMemory, Transition};
