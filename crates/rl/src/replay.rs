use rand::Rng;

/// One experience tuple `(s_t, a_t, r_t, s_{t+1})` plus the termination
/// flag used by the TD target (Equation (3) of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// State `s_t` observed before acting.
    pub state: Vec<f64>,
    /// Action `a_t` taken.
    pub action: usize,
    /// Reward `r_t` received.
    pub reward: f64,
    /// Successor state `s_{t+1}`.
    pub next_state: Vec<f64>,
    /// True when `next_state` is a termination step (the TD target is then
    /// the bare reward).
    pub terminal: bool,
}

/// Fixed-capacity ring buffer of the latest transitions, sampled uniformly
/// — the "replay memory M" of Algorithm 3. Uniform sampling of a large
/// recent window de-correlates consecutive transitions.
#[derive(Debug, Clone)]
pub struct ReplayMemory {
    buf: Vec<Transition>,
    capacity: usize,
    next: usize,
}

impl ReplayMemory {
    /// Creates a memory with the given capacity (the paper uses 2000).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            buf: Vec::with_capacity(capacity),
            capacity,
            next: 0,
        }
    }

    /// Stores a transition, evicting the oldest once full.
    pub fn push(&mut self, t: Transition) {
        if self.buf.len() < self.capacity {
            self.buf.push(t);
        } else {
            self.buf[self.next] = t;
        }
        self.next = (self.next + 1) % self.capacity;
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of transitions retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Samples `batch` transitions uniformly with replacement.
    /// Returns fewer only when the memory itself holds fewer.
    pub fn sample<'a, R: Rng>(&'a self, rng: &mut R, batch: usize) -> Vec<&'a Transition> {
        if self.buf.is_empty() {
            return Vec::new();
        }
        (0..batch)
            .map(|_| &self.buf[rng.gen_range(0..self.buf.len())])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(tag: f64) -> Transition {
        Transition {
            state: vec![tag],
            action: 0,
            reward: tag,
            next_state: vec![tag],
            terminal: false,
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut m = ReplayMemory::new(3);
        for i in 0..5 {
            m.push(t(i as f64));
        }
        assert_eq!(m.len(), 3);
        // 0 and 1 evicted; 2, 3, 4 remain.
        let rewards: Vec<f64> = m.buf.iter().map(|tr| tr.reward).collect();
        let mut sorted = rewards.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(sorted, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn sample_uniform_covers_buffer() {
        let mut m = ReplayMemory::new(8);
        for i in 0..8 {
            m.push(t(i as f64));
        }
        let mut rng = StdRng::seed_from_u64(1);
        let samples = m.sample(&mut rng, 4000);
        assert_eq!(samples.len(), 4000);
        let mut counts = [0usize; 8];
        for s in samples {
            counts[s.reward as usize] += 1;
        }
        // Every element sampled a plausible number of times (uniform = 500).
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 300 && c < 700, "element {i} sampled {c} times");
        }
    }

    #[test]
    fn sample_from_empty_is_empty() {
        let m = ReplayMemory::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(m.sample(&mut rng, 10).is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ReplayMemory::new(0);
    }
}
