use rand::Rng;

/// Xavier/Glorot uniform initialization: samples `count` weights from
/// `U(-limit, limit)` with `limit = sqrt(6 / (fan_in + fan_out))`.
///
/// This is Keras's default dense-layer initializer, matching the paper's
/// implementation environment (Keras 2.2).
pub fn xavier_uniform<R: Rng>(
    rng: &mut R,
    fan_in: usize,
    fan_out: usize,
    count: usize,
) -> Vec<f64> {
    let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
    (0..count).map(|_| rng.gen_range(-limit..limit)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn within_limits_and_deterministic() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = xavier_uniform(&mut rng, 10, 20, 200);
        let limit = (6.0_f64 / 30.0).sqrt();
        assert_eq!(w.len(), 200);
        assert!(w.iter().all(|v| v.abs() <= limit));
        // Deterministic for a fixed seed.
        let mut rng2 = StdRng::seed_from_u64(7);
        assert_eq!(w, xavier_uniform(&mut rng2, 10, 20, 200));
        // Not degenerate.
        let mean: f64 = w.iter().sum::<f64>() / w.len() as f64;
        assert!(mean.abs() < limit / 2.0);
    }
}
