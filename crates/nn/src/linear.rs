use crate::init::xavier_uniform;
use crate::math::{add_outer, dot, matvec, matvec_transpose};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense layer `y = W x + b` with row-major `W` of shape
/// `(out_dim, in_dim)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    /// Input dimensionality.
    pub in_dim: usize,
    /// Output dimensionality.
    pub out_dim: usize,
    /// Row-major weights, `w[r * in_dim + c]`.
    pub w: Vec<f64>,
    /// Per-output bias.
    pub b: Vec<f64>,
}

/// Gradient accumulator matching a [`Linear`] layer's shape.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LinearGrads {
    /// Gradient of the weights.
    pub gw: Vec<f64>,
    /// Gradient of the bias.
    pub gb: Vec<f64>,
}

impl Linear {
    /// Xavier-initialized layer.
    pub fn new<R: Rng>(rng: &mut R, in_dim: usize, out_dim: usize) -> Self {
        Self {
            in_dim,
            out_dim,
            w: xavier_uniform(rng, in_dim, out_dim, in_dim * out_dim),
            b: vec![0.0; out_dim],
        }
    }

    /// Forward pass into a caller-provided output buffer
    /// (resized as needed).
    pub fn forward(&self, x: &[f64], y: &mut Vec<f64>) {
        y.resize(self.out_dim, 0.0);
        matvec(&self.w, self.out_dim, self.in_dim, x, y);
        for (yi, bi) in y.iter_mut().zip(&self.b) {
            *yi += bi;
        }
    }

    /// Backward pass. `x` is the input the forward pass saw, `dy` the loss
    /// gradient w.r.t. the output. Accumulates parameter gradients into
    /// `grads` and, when `dx` is `Some`, accumulates the input gradient.
    pub fn backward(&self, x: &[f64], dy: &[f64], grads: &mut LinearGrads, dx: Option<&mut [f64]>) {
        grads.ensure_shape(self);
        add_outer(&mut grads.gw, self.out_dim, self.in_dim, dy, x);
        for (gb, d) in grads.gb.iter_mut().zip(dy) {
            *gb += d;
        }
        if let Some(dx) = dx {
            matvec_transpose(&self.w, self.out_dim, self.in_dim, dy, dx);
        }
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Copies all parameters from `other` (same shape required).
    pub fn copy_from(&mut self, other: &Linear) {
        assert_eq!(self.in_dim, other.in_dim);
        assert_eq!(self.out_dim, other.out_dim);
        self.w.copy_from_slice(&other.w);
        self.b.copy_from_slice(&other.b);
    }

    /// Single output coordinate, for tests.
    pub fn output(&self, x: &[f64], row: usize) -> f64 {
        dot(&self.w[row * self.in_dim..(row + 1) * self.in_dim], x) + self.b[row]
    }
}

impl LinearGrads {
    /// Zeroed gradients shaped like `layer`.
    pub fn zeros(layer: &Linear) -> Self {
        Self {
            gw: vec![0.0; layer.w.len()],
            gb: vec![0.0; layer.b.len()],
        }
    }

    fn ensure_shape(&mut self, layer: &Linear) {
        if self.gw.len() != layer.w.len() {
            self.gw = vec![0.0; layer.w.len()];
        }
        if self.gb.len() != layer.b.len() {
            self.gb = vec![0.0; layer.b.len()];
        }
    }

    /// Resets accumulated gradients to zero.
    pub fn zero(&mut self) {
        self.gw.iter_mut().for_each(|g| *g = 0.0);
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Scales all gradients, e.g. to average over a minibatch.
    pub fn scale(&mut self, s: f64) {
        self.gw.iter_mut().for_each(|g| *g *= s);
        self.gb.iter_mut().for_each(|g| *g *= s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_known_values() {
        let layer = Linear {
            in_dim: 2,
            out_dim: 2,
            w: vec![1.0, 2.0, 3.0, 4.0],
            b: vec![0.5, -0.5],
        };
        let mut y = Vec::new();
        layer.forward(&[1.0, 1.0], &mut y);
        assert_eq!(y, vec![3.5, 6.5]);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(3);
        let layer = Linear::new(&mut rng, 4, 3);
        let x: Vec<f64> = (0..4).map(|i| 0.3 * i as f64 - 0.5).collect();
        // Loss = sum(c ⊙ y).
        let c = [0.7, -1.3, 0.4];

        let mut y = Vec::new();
        layer.forward(&x, &mut y);
        let mut grads = LinearGrads::zeros(&layer);
        let mut dx = vec![0.0; 4];
        layer.backward(&x, &c, &mut grads, Some(&mut dx));

        // Check weight gradient numerically.
        let mut params = layer.w.clone();
        let err = crate::gradient_check(
            &mut params,
            &grads.gw,
            |p| {
                let probe = Linear {
                    w: p.to_vec(),
                    ..layer.clone()
                };
                let mut y = Vec::new();
                probe.forward(&x, &mut y);
                y.iter().zip(&c).map(|(a, b)| a * b).sum()
            },
            1e-5,
        );
        assert!(err < 1e-6, "weight gradient error {err}");

        // Check input gradient numerically.
        let mut xp = x.clone();
        let err = crate::gradient_check(
            &mut xp,
            &dx,
            |p| {
                let mut y = Vec::new();
                layer.forward(p, &mut y);
                y.iter().zip(&c).map(|(a, b)| a * b).sum()
            },
            1e-5,
        );
        assert!(err < 1e-6, "input gradient error {err}");
    }

    #[test]
    fn grads_accumulate_and_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Linear::new(&mut rng, 2, 2);
        let mut grads = LinearGrads::zeros(&layer);
        layer.backward(&[1.0, 0.0], &[1.0, 1.0], &mut grads, None);
        let snapshot = grads.gw.clone();
        layer.backward(&[1.0, 0.0], &[1.0, 1.0], &mut grads, None);
        for (a, b) in grads.gw.iter().zip(&snapshot) {
            assert!((a - 2.0 * b).abs() < 1e-12);
        }
        grads.zero();
        assert!(grads.gw.iter().all(|&g| g == 0.0));
        assert!(grads.gb.iter().all(|&g| g == 0.0));
    }
}
