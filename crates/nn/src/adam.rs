use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Adam optimizer (Kingma & Ba, 2015) — the paper trains both the DQN and
/// the learned measure with "Adam stochastic gradient descent with an
/// initial learning rate of 0.001" (Section 6.1).
///
/// Moment buffers are keyed by the parameter slice's address-stable
/// identity: callers register each parameter tensor implicitly on first
/// update through its length and an internal counter per step. To keep the
/// API simple and allocation-free on the hot path, the optimizer tracks
/// buffers positionally: every [`Adam::begin_step`] resets the cursor, and
/// the sequence of [`Adam::update`] calls must touch parameter tensors in a
/// stable order (which the `Mlp`/`GruCell` drivers guarantee).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Step size α.
    pub learning_rate: f64,
    /// First-moment decay β₁ (default 0.9).
    pub beta1: f64,
    /// Second-moment decay β₂ (default 0.999).
    pub beta2: f64,
    /// Denominator fuzz ε (default 1e-8).
    pub eps: f64,
    /// Global step count `t` (shared across tensors, incremented once per
    /// optimizer step).
    t: u64,
    cursor: usize,
    moments: Vec<Moments>,
    #[serde(skip)]
    _non_exhaustive: (),
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct Moments {
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Creates an optimizer with the standard β/ε defaults.
    pub fn new(learning_rate: f64) -> Self {
        Self {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            cursor: 0,
            moments: Vec::new(),
            _non_exhaustive: (),
        }
    }

    /// Marks the start of an optimizer step: increments the bias-correction
    /// counter and rewinds the tensor cursor.
    pub fn begin_step(&mut self) {
        self.t += 1;
        self.cursor = 0;
    }

    /// Applies one Adam update to `params` given `grads`.
    /// Must be called between `begin_step` calls in a stable tensor order.
    pub fn update(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len());
        assert!(self.t > 0, "call begin_step before update");
        if self.cursor == self.moments.len() {
            self.moments.push(Moments {
                m: vec![0.0; params.len()],
                v: vec![0.0; params.len()],
            });
        }
        let mom = &mut self.moments[self.cursor];
        assert_eq!(
            mom.m.len(),
            params.len(),
            "tensor order changed between steps"
        );
        self.cursor += 1;

        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            mom.m[i] = self.beta1 * mom.m[i] + (1.0 - self.beta1) * g;
            mom.v[i] = self.beta2 * mom.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = mom.m[i] / bc1;
            let v_hat = mom.v[i] / bc2;
            params[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    /// Number of optimizer steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

/// A tiny named-tensor variant for cases where update order is not stable.
/// Keys are caller-chosen string identifiers.
#[derive(Debug, Clone, Default)]
pub struct KeyedAdam {
    inner: HashMap<String, (Vec<f64>, Vec<f64>)>,
    /// Step size α.
    pub learning_rate: f64,
    /// First-moment decay β₁.
    pub beta1: f64,
    /// Second-moment decay β₂.
    pub beta2: f64,
    /// Denominator fuzz ε.
    pub eps: f64,
    t: u64,
}

impl KeyedAdam {
    /// Creates an optimizer with standard β/ε defaults.
    pub fn new(learning_rate: f64) -> Self {
        Self {
            inner: HashMap::new(),
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
        }
    }

    /// Marks the start of an optimizer step (bias-correction counter).
    pub fn begin_step(&mut self) {
        self.t += 1;
    }

    /// Applies one Adam update to the tensor registered under `key`.
    pub fn update(&mut self, key: &str, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len());
        let (m, v) = self
            .inner
            .entry(key.to_string())
            .or_insert_with(|| (vec![0.0; params.len()], vec![0.0; params.len()]));
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
            params[i] -= self.learning_rate * (m[i] / bc1) / ((v[i] / bc2).sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        // f(x) = (x - 3)^2; Adam should converge to 3.
        let mut adam = Adam::new(0.1);
        let mut x = vec![0.0];
        for _ in 0..500 {
            let g = vec![2.0 * (x[0] - 3.0)];
            adam.begin_step();
            adam.update(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-3, "x = {}", x[0]);
    }

    #[test]
    fn first_step_is_learning_rate_sized() {
        // With bias correction, the first Adam step has magnitude ~lr.
        let mut adam = Adam::new(0.001);
        let mut x = vec![10.0];
        adam.begin_step();
        adam.update(&mut x, &[123.0]);
        assert!((10.0 - x[0] - 0.001).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "tensor order changed")]
    fn unstable_tensor_order_detected() {
        let mut adam = Adam::new(0.01);
        let mut a = vec![0.0; 3];
        let mut b = vec![0.0; 5];
        adam.begin_step();
        adam.update(&mut a, &[0.0; 3]);
        adam.update(&mut b, &[0.0; 5]);
        adam.begin_step();
        adam.update(&mut b, &[0.0; 5]); // wrong order
    }

    #[test]
    fn keyed_adam_minimizes_quadratic() {
        let mut adam = KeyedAdam::new(0.1);
        let mut x = vec![-4.0];
        for _ in 0..500 {
            let g = vec![2.0 * (x[0] + 1.0)];
            adam.begin_step();
            adam.update("x", &mut x, &g);
        }
        assert!((x[0] + 1.0).abs() < 1e-3);
    }
}
