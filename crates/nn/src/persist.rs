//! Compact binary persistence for trained models.
//!
//! The paper trains policies for hours (Table 7) and then serves them at
//! query time; a deployable system must be able to save a trained model
//! and load it in a different process. No general-purpose serialization
//! format crate is available offline, so this module defines a minimal
//! length-prefixed, versioned binary codec on top of `bytes`.
//!
//! Layout: a 4-byte magic, a u16 version, then type-specific payload.
//! All integers little-endian; floats as IEEE-754 bits.

use crate::{Activation, GruCell, Linear, Mlp};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic prefix of every model file ("SSUB").
pub const MAGIC: [u8; 4] = *b"SSUB";
/// Current codec version.
pub const VERSION: u16 = 1;

/// Errors produced when decoding a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The magic prefix did not match.
    BadMagic,
    /// File written by an unsupported codec version.
    UnsupportedVersion(u16),
    /// Buffer ended before the payload was complete.
    Truncated,
    /// A tag byte had no corresponding variant.
    InvalidTag(u8),
    /// A declared dimension was implausible (corruption guard).
    InvalidDimension(u64),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a SimSub model file (bad magic)"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported model version {v}"),
            CodecError::Truncated => write!(f, "model file truncated"),
            CodecError::InvalidTag(t) => write!(f, "invalid tag byte {t}"),
            CodecError::InvalidDimension(d) => write!(f, "implausible dimension {d}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Upper bound on any serialized dimension; guards against allocating
/// absurd buffers when reading corrupt files.
const MAX_DIM: u64 = 1 << 24;

/// Streaming encoder over a growable byte buffer.
pub struct Encoder {
    buf: BytesMut,
}

impl Default for Encoder {
    fn default() -> Self {
        Self::new()
    }
}

impl Encoder {
    /// Starts a buffer with the magic + version header.
    pub fn new() -> Self {
        let mut buf = BytesMut::with_capacity(256);
        buf.put_slice(&MAGIC);
        buf.put_u16_le(VERSION);
        Self { buf }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Appends a little-endian f64.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Length-prefixed f64 slice.
    pub fn put_f64_slice(&mut self, v: &[f64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.buf.put_f64_le(x);
        }
    }

    /// Finalizes the buffer.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Streaming decoder with bounds checking.
pub struct Decoder {
    buf: Bytes,
}

impl Decoder {
    /// Validates the header and positions the cursor after it.
    pub fn new(data: &[u8]) -> Result<Self, CodecError> {
        let mut buf = Bytes::copy_from_slice(data);
        if buf.remaining() < 6 {
            return Err(CodecError::Truncated);
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if magic != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        Ok(Self { buf })
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        if self.buf.remaining() < 1 {
            return Err(CodecError::Truncated);
        }
        Ok(self.buf.get_u8())
    }

    /// Reads a little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        if self.buf.remaining() < 8 {
            return Err(CodecError::Truncated);
        }
        Ok(self.buf.get_u64_le())
    }

    /// Reads a little-endian f64.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        if self.buf.remaining() < 8 {
            return Err(CodecError::Truncated);
        }
        Ok(self.buf.get_f64_le())
    }

    /// Reads a dimension with a plausibility bound (corruption guard).
    pub fn get_dim(&mut self) -> Result<usize, CodecError> {
        let v = self.get_u64()?;
        if v > MAX_DIM {
            return Err(CodecError::InvalidDimension(v));
        }
        Ok(v as usize)
    }

    /// Length-prefixed f64 slice.
    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>, CodecError> {
        let len = self.get_dim()?;
        if self.buf.remaining() < len * 8 {
            return Err(CodecError::Truncated);
        }
        Ok((0..len).map(|_| self.buf.get_f64_le()).collect())
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        !self.buf.has_remaining()
    }
}

/// Types that can round-trip through the binary codec.
pub trait BinaryCodec: Sized {
    /// Appends this value to the encoder.
    fn encode(&self, enc: &mut Encoder);
    /// Reads a value back.
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError>;

    /// Serializes into a standalone byte buffer (with header).
    fn to_bytes(&self) -> Bytes {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.finish()
    }

    /// Deserializes from a standalone buffer.
    fn from_bytes(data: &[u8]) -> Result<Self, CodecError> {
        let mut dec = Decoder::new(data)?;
        Self::decode(&mut dec)
    }

    /// Writes the model to a file.
    fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads a model from a file.
    fn load(path: &std::path::Path) -> std::io::Result<Self> {
        let data = std::fs::read(path)?;
        Self::from_bytes(&data).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

impl Activation {
    fn tag(self) -> u8 {
        match self {
            Activation::Relu => 0,
            Activation::Sigmoid => 1,
            Activation::Tanh => 2,
            Activation::Identity => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, CodecError> {
        Ok(match tag {
            0 => Activation::Relu,
            1 => Activation::Sigmoid,
            2 => Activation::Tanh,
            3 => Activation::Identity,
            other => return Err(CodecError::InvalidTag(other)),
        })
    }
}

impl BinaryCodec for Linear {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.in_dim as u64);
        enc.put_u64(self.out_dim as u64);
        enc.put_f64_slice(&self.w);
        enc.put_f64_slice(&self.b);
    }

    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        let in_dim = dec.get_dim()?;
        let out_dim = dec.get_dim()?;
        let w = dec.get_f64_vec()?;
        let b = dec.get_f64_vec()?;
        if w.len() != in_dim * out_dim || b.len() != out_dim {
            return Err(CodecError::InvalidDimension(w.len() as u64));
        }
        Ok(Linear {
            in_dim,
            out_dim,
            w,
            b,
        })
    }
}

impl BinaryCodec for Mlp {
    fn encode(&self, enc: &mut Encoder) {
        let (layers, activations) = self.parts();
        enc.put_u64(layers.len() as u64);
        for (layer, act) in layers.iter().zip(activations) {
            enc.put_u8(act.tag());
            layer.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        let n = dec.get_dim()?;
        let mut layers = Vec::with_capacity(n);
        let mut acts = Vec::with_capacity(n);
        for _ in 0..n {
            acts.push(Activation::from_tag(dec.get_u8()?)?);
            layers.push(Linear::decode(dec)?);
        }
        Mlp::from_parts(layers, acts).map_err(|_| CodecError::InvalidDimension(n as u64))
    }
}

impl BinaryCodec for GruCell {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.in_dim as u64);
        enc.put_u64(self.hidden_dim as u64);
        enc.put_f64_slice(&self.flat_params());
    }

    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        let in_dim = dec.get_dim()?;
        let hidden_dim = dec.get_dim()?;
        let params = dec.get_f64_vec()?;
        // Build a correctly-shaped zero cell, then load the parameters.
        let mut rng = rand::rngs::mock::StepRng::new(0, 0);
        let mut cell = GruCell::new(&mut rng, in_dim, hidden_dim);
        if params.len() != cell.param_count() {
            return Err(CodecError::InvalidDimension(params.len() as u64));
        }
        cell.set_flat_params(&params);
        Ok(cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Linear::new(&mut rng, 4, 3);
        let bytes = layer.to_bytes();
        let back = Linear::from_bytes(&bytes).unwrap();
        assert_eq!(layer.w, back.w);
        assert_eq!(layer.b, back.b);
    }

    #[test]
    fn mlp_roundtrip_preserves_outputs() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = Mlp::new(
            &mut rng,
            &[3, 20, 5],
            &[Activation::Relu, Activation::Sigmoid],
        );
        let back = Mlp::from_bytes(&net.to_bytes()).unwrap();
        let x = [0.1, -0.4, 0.9];
        assert_eq!(net.forward(&x), back.forward(&x));
    }

    #[test]
    fn gru_roundtrip_preserves_encoding() {
        let mut rng = StdRng::seed_from_u64(3);
        let cell = GruCell::new(&mut rng, 2, 8);
        let back = GruCell::from_bytes(&cell.to_bytes()).unwrap();
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 0.1, -0.2]).collect();
        assert_eq!(cell.encode(&xs), back.encode(&xs));
    }

    #[test]
    fn file_roundtrip() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = Mlp::new(
            &mut rng,
            &[2, 4, 2],
            &[Activation::Tanh, Activation::Identity],
        );
        let dir = std::env::temp_dir().join("simsub_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ssub");
        net.save(&path).unwrap();
        let back = Mlp::load(&path).unwrap();
        assert_eq!(net.flat_params(), back.flat_params());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_is_detected() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = Mlp::new(&mut rng, &[2, 3], &[Activation::Relu]);
        let bytes = net.to_bytes();

        // Bad magic.
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert_eq!(Mlp::from_bytes(&bad), Err(CodecError::BadMagic));

        // Bad version.
        let mut bad = bytes.to_vec();
        bad[4] = 0xFF;
        assert!(matches!(
            Mlp::from_bytes(&bad),
            Err(CodecError::UnsupportedVersion(_))
        ));

        // Truncation.
        let truncated = &bytes[..bytes.len() - 3];
        assert_eq!(Mlp::from_bytes(truncated), Err(CodecError::Truncated));

        // Invalid activation tag.
        let mut bad = bytes.to_vec();
        bad[14] = 200; // first tag byte (after magic+version+layer count)
        assert!(matches!(
            Mlp::from_bytes(&bad),
            Err(CodecError::InvalidTag(200))
        ));
    }

    #[test]
    fn empty_buffer_is_truncated() {
        assert_eq!(Mlp::from_bytes(&[]), Err(CodecError::Truncated));
    }
}
