//! Dense vector/matrix primitives. Matrices are row-major `Vec<f64>` of
//! shape `(rows, cols)`; all routines are written for the small layer sizes
//! of the SimSub networks (tens of units), where simple loops beat any
//! BLAS dispatch overhead.

/// Dot product of two equal-length vectors.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x` element-wise.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y = W x` for row-major `W` of shape `(rows, cols)`.
/// `y` must have length `rows`, `x` length `cols`.
#[inline]
pub fn matvec(w: &[f64], rows: usize, cols: usize, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert_eq!(x.len(), cols);
    debug_assert_eq!(y.len(), rows);
    for (r, yr) in y.iter_mut().enumerate() {
        *yr = dot(&w[r * cols..(r + 1) * cols], x);
    }
}

/// `y += Wᵀ g` for row-major `W` of shape `(rows, cols)`: propagates a
/// gradient `g` (length `rows`) back through `W`, accumulating into `y`
/// (length `cols`).
#[inline]
pub fn matvec_transpose(w: &[f64], rows: usize, cols: usize, g: &[f64], y: &mut [f64]) {
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert_eq!(g.len(), rows);
    debug_assert_eq!(y.len(), cols);
    for (r, gr) in g.iter().enumerate() {
        axpy(*gr, &w[r * cols..(r + 1) * cols], y);
    }
}

/// `G += g ⊗ x`: accumulates the outer product of a row-gradient `g`
/// (length `rows`) and an input `x` (length `cols`) into a row-major
/// gradient matrix `G` of shape `(rows, cols)`.
#[inline]
pub fn add_outer(grad: &mut [f64], rows: usize, cols: usize, g: &[f64], x: &[f64]) {
    debug_assert_eq!(grad.len(), rows * cols);
    debug_assert_eq!(g.len(), rows);
    debug_assert_eq!(x.len(), cols);
    for (r, gr) in g.iter().enumerate() {
        axpy(*gr, x, &mut grad[r * cols..(r + 1) * cols]);
    }
}

/// Squared Euclidean distance between two equal-length vectors.
#[inline]
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_known_values() {
        // W = [[1, 2], [3, 4], [5, 6]], x = [1, -1]
        let w = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let x = [1.0, -1.0];
        let mut y = [0.0; 3];
        matvec(&w, 3, 2, &x, &mut y);
        assert_eq!(y, [-1.0, -1.0, -1.0]);
    }

    #[test]
    fn matvec_transpose_known_values() {
        let w = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let g = [1.0, 0.0, -1.0];
        let mut y = [0.0; 2];
        matvec_transpose(&w, 3, 2, &g, &mut y);
        assert_eq!(y, [-4.0, -4.0]);
    }

    #[test]
    fn outer_product_accumulates() {
        let mut grad = [0.0; 6];
        add_outer(&mut grad, 3, 2, &[1.0, 2.0, 3.0], &[10.0, 20.0]);
        add_outer(&mut grad, 3, 2, &[1.0, 2.0, 3.0], &[10.0, 20.0]);
        assert_eq!(grad, [20.0, 40.0, 40.0, 80.0, 60.0, 120.0]);
    }

    #[test]
    fn squared_distance_matches_dot_identity() {
        let a = [1.0, 2.0, 3.0];
        let b = [0.0, -2.0, 4.0];
        // |a-b|^2 = 1 + 16 + 1
        assert_eq!(squared_distance(&a, &b), 18.0);
        assert_eq!(squared_distance(&a, &a), 0.0);
    }
}
