#![warn(missing_docs)]
// DP recurrences and BPTT update several arrays in lockstep per index;
// explicit index loops keep those kernels aligned with the paper's
// equations, which iterator chains would obscure.
#![allow(clippy::needless_range_loop)]

//! Minimal from-scratch neural-network substrate for the SimSub reproduction.
//!
//! The paper's learned components are small: a 2-layer feed-forward Q-network
//! (3 inputs → 20 ReLU → `2 + k` sigmoid outputs, Section 6.1) and a GRU
//! encoder for the t2vec similarity measure. The offline crate set contains
//! no tensor library, so this crate implements exactly what those components
//! need — dense layers, ReLU/sigmoid/tanh activations, a GRU cell with
//! truncated-BPTT gradients, and the Adam optimizer — with hand-derived
//! backward passes validated against finite differences in the test suite.
//!
//! Everything is `f64` and allocation-conscious: forward/backward passes
//! reuse caller-provided caches so the RL training loop does not allocate
//! per step.

mod adam;
mod gru;
mod init;
mod linear;
mod math;
mod mlp;
mod persist;

pub use adam::{Adam, KeyedAdam};
pub use gru::{GruCache, GruCell, GruGrads};
pub use init::xavier_uniform;
pub use linear::{Linear, LinearGrads};
pub use math::{add_outer, axpy, dot, matvec, matvec_transpose, squared_distance};
pub use mlp::{Activation, Mlp, MlpCache, MlpGrads};
pub use persist::{BinaryCodec, CodecError, Decoder, Encoder};

/// Numerically checks an analytic gradient against central finite
/// differences. `f` evaluates the scalar loss as a function of the parameter
/// vector; `analytic` is the gradient produced by a backward pass.
/// Returns the maximum relative error over all coordinates.
///
/// Used throughout the test suites of this crate; exposed publicly so
/// dependent crates (e.g. the t2vec trainer) can gradient-check their own
/// composite losses.
pub fn gradient_check<F: FnMut(&[f64]) -> f64>(
    params: &mut [f64],
    analytic: &[f64],
    mut f: F,
    eps: f64,
) -> f64 {
    assert_eq!(params.len(), analytic.len());
    let mut worst: f64 = 0.0;
    for i in 0..params.len() {
        let orig = params[i];
        params[i] = orig + eps;
        let up = f(params);
        params[i] = orig - eps;
        let down = f(params);
        params[i] = orig;
        let numeric = (up - down) / (2.0 * eps);
        let denom = numeric.abs().max(analytic[i].abs()).max(1e-8);
        worst = worst.max((numeric - analytic[i]).abs() / denom);
    }
    worst
}
