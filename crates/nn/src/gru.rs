use crate::adam::Adam;
use crate::init::xavier_uniform;
use crate::math::{add_outer, matvec, matvec_transpose};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A gated recurrent unit (Cho et al., 2014) — the encoder architecture of
/// t2vec. For input `x_t` and previous hidden state `h_{t-1}`:
///
/// ```text
/// z_t = σ(W_z x_t + U_z h_{t-1} + b_z)          (update gate)
/// r_t = σ(W_r x_t + U_r h_{t-1} + b_r)          (reset gate)
/// ĥ_t = tanh(W_h x_t + U_h (r_t ⊙ h_{t-1}) + b_h)
/// h_t = (1 - z_t) ⊙ h_{t-1} + z_t ⊙ ĥ_t
/// ```
///
/// The incremental property the SimSub paper exploits (`Φinc = O(1)` for
/// t2vec, Table 1) falls directly out of this recurrence: extending a
/// subtrajectory by one point is a single [`GruCell::step`] from the cached
/// hidden state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GruCell {
    /// Input dimensionality.
    pub in_dim: usize,
    /// Hidden-state dimensionality (= embedding size).
    pub hidden_dim: usize,
    /// Update-gate input weights, row-major `(hidden_dim, in_dim)`.
    pub wz: Vec<f64>,
    /// Reset-gate input weights.
    pub wr: Vec<f64>,
    /// Candidate input weights.
    pub wh: Vec<f64>,
    /// Update-gate recurrent weights, row-major `(hidden_dim, hidden_dim)`.
    pub uz: Vec<f64>,
    /// Reset-gate recurrent weights.
    pub ur: Vec<f64>,
    /// Candidate recurrent weights.
    pub uh: Vec<f64>,
    /// Update-gate bias.
    pub bz: Vec<f64>,
    /// Reset-gate bias.
    pub br: Vec<f64>,
    /// Candidate bias.
    pub bh: Vec<f64>,
}

/// Saved intermediates of one forward step, needed by BPTT.
#[derive(Debug, Clone, Default)]
struct StepCache {
    x: Vec<f64>,
    h_prev: Vec<f64>,
    z: Vec<f64>,
    r: Vec<f64>,
    hhat: Vec<f64>,
}

/// Forward-pass cache for a whole sequence.
#[derive(Debug, Clone, Default)]
pub struct GruCache {
    steps: Vec<StepCache>,
}

impl GruCache {
    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Clears recorded steps, keeping allocations.
    pub fn clear(&mut self) {
        self.steps.clear();
    }
}

/// Gradient accumulator matching a [`GruCell`].
#[derive(Debug, Clone, Default)]
pub struct GruGrads {
    /// Gradient of [`GruCell::wz`].
    pub wz: Vec<f64>,
    /// Gradient of [`GruCell::wr`].
    pub wr: Vec<f64>,
    /// Gradient of [`GruCell::wh`].
    pub wh: Vec<f64>,
    /// Gradient of [`GruCell::uz`].
    pub uz: Vec<f64>,
    /// Gradient of [`GruCell::ur`].
    pub ur: Vec<f64>,
    /// Gradient of [`GruCell::uh`].
    pub uh: Vec<f64>,
    /// Gradient of [`GruCell::bz`].
    pub bz: Vec<f64>,
    /// Gradient of [`GruCell::br`].
    pub br: Vec<f64>,
    /// Gradient of [`GruCell::bh`].
    pub bh: Vec<f64>,
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl GruCell {
    /// Xavier-initialized GRU cell.
    pub fn new<R: Rng>(rng: &mut R, in_dim: usize, hidden_dim: usize) -> Self {
        let wi = |rng: &mut R| xavier_uniform(rng, in_dim, hidden_dim, hidden_dim * in_dim);
        let wu = |rng: &mut R| xavier_uniform(rng, hidden_dim, hidden_dim, hidden_dim * hidden_dim);
        Self {
            in_dim,
            hidden_dim,
            wz: wi(rng),
            wr: wi(rng),
            wh: wi(rng),
            uz: wu(rng),
            ur: wu(rng),
            uh: wu(rng),
            bz: vec![0.0; hidden_dim],
            br: vec![0.0; hidden_dim],
            bh: vec![0.0; hidden_dim],
        }
    }

    /// The all-zeros initial hidden state `h_0`.
    pub fn initial_state(&self) -> Vec<f64> {
        vec![0.0; self.hidden_dim]
    }

    /// One recurrence step: writes `h_t` into `h` (in place over `h_{t-1}`).
    /// This is the O(1)-per-point incremental primitive (constant in the
    /// trajectory length; the constant is `O(hidden_dim²)`).
    pub fn step(&self, h: &mut [f64], x: &[f64]) {
        let d = self.hidden_dim;
        debug_assert_eq!(h.len(), d);
        debug_assert_eq!(x.len(), self.in_dim);
        let mut z = vec![0.0; d];
        let mut r = vec![0.0; d];
        let mut hhat = vec![0.0; d];
        self.gates(h, x, &mut z, &mut r, &mut hhat);
        for i in 0..d {
            h[i] = (1.0 - z[i]) * h[i] + z[i] * hhat[i];
        }
    }

    fn gates(&self, h_prev: &[f64], x: &[f64], z: &mut [f64], r: &mut [f64], hhat: &mut [f64]) {
        let d = self.hidden_dim;
        let mut tmp = vec![0.0; d];

        matvec(&self.wz, d, self.in_dim, x, z);
        matvec(&self.uz, d, d, h_prev, &mut tmp);
        for i in 0..d {
            z[i] = sigmoid(z[i] + tmp[i] + self.bz[i]);
        }

        matvec(&self.wr, d, self.in_dim, x, r);
        matvec(&self.ur, d, d, h_prev, &mut tmp);
        for i in 0..d {
            r[i] = sigmoid(r[i] + tmp[i] + self.br[i]);
        }

        let rh: Vec<f64> = (0..d).map(|i| r[i] * h_prev[i]).collect();
        matvec(&self.wh, d, self.in_dim, x, hhat);
        matvec(&self.uh, d, d, &rh, &mut tmp);
        for i in 0..d {
            hhat[i] = (hhat[i] + tmp[i] + self.bh[i]).tanh();
        }
    }

    /// Forward step that records intermediates for BPTT into `cache`.
    pub fn step_cached(&self, h: &mut [f64], x: &[f64], cache: &mut GruCache) {
        let d = self.hidden_dim;
        let mut step = StepCache {
            x: x.to_vec(),
            h_prev: h.to_vec(),
            z: vec![0.0; d],
            r: vec![0.0; d],
            hhat: vec![0.0; d],
        };
        self.gates(&step.h_prev, x, &mut step.z, &mut step.r, &mut step.hhat);
        for i in 0..d {
            h[i] = (1.0 - step.z[i]) * step.h_prev[i] + step.z[i] * step.hhat[i];
        }
        cache.steps.push(step);
    }

    /// Encodes a full sequence, returning the final hidden state.
    pub fn encode(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        let mut h = self.initial_state();
        for x in xs {
            self.step(&mut h, x);
        }
        h
    }

    /// Backpropagation through time over the steps recorded in `cache`.
    ///
    /// `dh_final` is the loss gradient w.r.t. the final hidden state.
    /// Parameter gradients are *accumulated* into `grads`; the function
    /// returns the gradient w.r.t. the initial hidden state (rarely needed,
    /// but cheap to expose).
    pub fn backward(&self, cache: &GruCache, dh_final: &[f64], grads: &mut GruGrads) -> Vec<f64> {
        let d = self.hidden_dim;
        grads.ensure_shape(self);
        let mut dh: Vec<f64> = dh_final.to_vec();
        let mut dz = vec![0.0; d];
        let mut dhhat_pre = vec![0.0; d];
        let mut drh = vec![0.0; d];
        let mut dr_pre = vec![0.0; d];
        let mut dz_pre = vec![0.0; d];

        for step in cache.steps.iter().rev() {
            let (x, h_prev, z, r, hhat) = (&step.x, &step.h_prev, &step.z, &step.r, &step.hhat);
            let mut dh_prev = vec![0.0; d];

            for i in 0..d {
                // h = (1 - z) ⊙ h_prev + z ⊙ ĥ
                dh_prev[i] += dh[i] * (1.0 - z[i]);
                dz[i] = dh[i] * (hhat[i] - h_prev[i]);
                // dĥ chained through tanh.
                dhhat_pre[i] = dh[i] * z[i] * (1.0 - hhat[i] * hhat[i]);
            }

            // ĥ branch: ĥ_pre = W_h x + U_h (r ⊙ h_prev) + b_h
            add_outer(&mut grads.wh, d, self.in_dim, &dhhat_pre, x);
            let rh: Vec<f64> = (0..d).map(|i| r[i] * h_prev[i]).collect();
            add_outer(&mut grads.uh, d, d, &dhhat_pre, &rh);
            for i in 0..d {
                grads.bh[i] += dhhat_pre[i];
            }
            drh.iter_mut().for_each(|v| *v = 0.0);
            matvec_transpose(&self.uh, d, d, &dhhat_pre, &mut drh);
            for i in 0..d {
                dh_prev[i] += drh[i] * r[i];
                // r gate: chained through sigmoid.
                dr_pre[i] = drh[i] * h_prev[i] * r[i] * (1.0 - r[i]);
                // z gate.
                dz_pre[i] = dz[i] * z[i] * (1.0 - z[i]);
            }

            // r branch: r_pre = W_r x + U_r h_prev + b_r
            add_outer(&mut grads.wr, d, self.in_dim, &dr_pre, x);
            add_outer(&mut grads.ur, d, d, &dr_pre, h_prev);
            for i in 0..d {
                grads.br[i] += dr_pre[i];
            }
            matvec_transpose(&self.ur, d, d, &dr_pre, &mut dh_prev);

            // z branch: z_pre = W_z x + U_z h_prev + b_z
            add_outer(&mut grads.wz, d, self.in_dim, &dz_pre, x);
            add_outer(&mut grads.uz, d, d, &dz_pre, h_prev);
            for i in 0..d {
                grads.bz[i] += dz_pre[i];
            }
            matvec_transpose(&self.uz, d, d, &dz_pre, &mut dh_prev);

            dh = dh_prev;
        }
        dh
    }

    /// Applies an Adam update with accumulated gradients.
    pub fn apply_grads(&mut self, grads: &GruGrads, adam: &mut Adam) {
        adam.begin_step();
        adam.update(&mut self.wz, &grads.wz);
        adam.update(&mut self.wr, &grads.wr);
        adam.update(&mut self.wh, &grads.wh);
        adam.update(&mut self.uz, &grads.uz);
        adam.update(&mut self.ur, &grads.ur);
        adam.update(&mut self.uh, &grads.uh);
        adam.update(&mut self.bz, &grads.bz);
        adam.update(&mut self.br, &grads.br);
        adam.update(&mut self.bh, &grads.bh);
    }

    /// Total number of scalar parameters.
    pub fn param_count(&self) -> usize {
        3 * self.hidden_dim * self.in_dim
            + 3 * self.hidden_dim * self.hidden_dim
            + 3 * self.hidden_dim
    }

    /// Flattens all parameters in a stable order (tests / persistence).
    pub fn flat_params(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.param_count());
        for t in [
            &self.wz, &self.wr, &self.wh, &self.uz, &self.ur, &self.uh, &self.bz, &self.br,
            &self.bh,
        ] {
            out.extend_from_slice(t);
        }
        out
    }

    /// Loads from [`GruCell::flat_params`] layout.
    pub fn set_flat_params(&mut self, flat: &[f64]) {
        assert_eq!(flat.len(), self.param_count());
        let mut off = 0;
        for t in [
            &mut self.wz,
            &mut self.wr,
            &mut self.wh,
            &mut self.uz,
            &mut self.ur,
            &mut self.uh,
            &mut self.bz,
            &mut self.br,
            &mut self.bh,
        ] {
            let len = t.len();
            t.copy_from_slice(&flat[off..off + len]);
            off += len;
        }
    }
}

impl GruGrads {
    /// Zeroed gradients shaped like `cell`.
    pub fn zeros(cell: &GruCell) -> Self {
        let wi = cell.hidden_dim * cell.in_dim;
        let wu = cell.hidden_dim * cell.hidden_dim;
        Self {
            wz: vec![0.0; wi],
            wr: vec![0.0; wi],
            wh: vec![0.0; wi],
            uz: vec![0.0; wu],
            ur: vec![0.0; wu],
            uh: vec![0.0; wu],
            bz: vec![0.0; cell.hidden_dim],
            br: vec![0.0; cell.hidden_dim],
            bh: vec![0.0; cell.hidden_dim],
        }
    }

    fn ensure_shape(&mut self, cell: &GruCell) {
        if self.wz.len() != cell.hidden_dim * cell.in_dim {
            *self = Self::zeros(cell);
        }
    }

    /// Resets all gradients to zero.
    pub fn zero(&mut self) {
        for t in [
            &mut self.wz,
            &mut self.wr,
            &mut self.wh,
            &mut self.uz,
            &mut self.ur,
            &mut self.uh,
            &mut self.bz,
            &mut self.br,
            &mut self.bh,
        ] {
            t.iter_mut().for_each(|g| *g = 0.0);
        }
    }

    /// Scales all gradients (minibatch averaging).
    pub fn scale(&mut self, s: f64) {
        for t in [
            &mut self.wz,
            &mut self.wr,
            &mut self.wh,
            &mut self.uz,
            &mut self.ur,
            &mut self.uh,
            &mut self.bz,
            &mut self.br,
            &mut self.bh,
        ] {
            t.iter_mut().for_each(|g| *g *= s);
        }
    }

    /// Flattened gradients in [`GruCell::flat_params`] order.
    pub fn flat(&self) -> Vec<f64> {
        let mut out = Vec::new();
        for t in [
            &self.wz, &self.wr, &self.wh, &self.uz, &self.ur, &self.uh, &self.bz, &self.br,
            &self.bh,
        ] {
            out.extend_from_slice(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn seq(rng: &mut StdRng, len: usize, dim: usize) -> Vec<Vec<f64>> {
        use rand::Rng;
        (0..len)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect()
    }

    #[test]
    fn step_and_step_cached_agree() {
        let mut rng = StdRng::seed_from_u64(5);
        let cell = GruCell::new(&mut rng, 2, 8);
        let xs = seq(&mut rng, 12, 2);

        let mut h1 = cell.initial_state();
        for x in &xs {
            cell.step(&mut h1, x);
        }
        let mut h2 = cell.initial_state();
        let mut cache = GruCache::default();
        for x in &xs {
            cell.step_cached(&mut h2, x, &mut cache);
        }
        assert_eq!(h1, h2);
        assert_eq!(cache.len(), 12);
        assert_eq!(h1, cell.encode(&xs));
    }

    #[test]
    fn hidden_state_is_bounded() {
        // GRU hidden state is a convex combination of tanh outputs and the
        // initial state, so it stays in (-1, 1) from h0 = 0.
        let mut rng = StdRng::seed_from_u64(9);
        let cell = GruCell::new(&mut rng, 3, 16);
        let xs = seq(&mut rng, 200, 3);
        let h = cell.encode(&xs);
        assert!(h.iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn bptt_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(17);
        let cell = GruCell::new(&mut rng, 2, 5);
        let xs = seq(&mut rng, 7, 2);
        // Loss = c · h_T.
        let c: Vec<f64> = (0..5).map(|i| 0.5 - 0.25 * i as f64).collect();

        let mut h = cell.initial_state();
        let mut cache = GruCache::default();
        for x in &xs {
            cell.step_cached(&mut h, x, &mut cache);
        }
        let mut grads = GruGrads::zeros(&cell);
        cell.backward(&cache, &c, &mut grads);

        let mut params = cell.flat_params();
        let analytic = grads.flat();
        let err = crate::gradient_check(
            &mut params,
            &analytic,
            |p| {
                let mut probe = cell.clone();
                probe.set_flat_params(p);
                let h = probe.encode(&xs);
                h.iter().zip(&c).map(|(a, b)| a * b).sum()
            },
            1e-5,
        );
        assert!(err < 1e-4, "GRU BPTT gradient error {err}");
    }

    #[test]
    fn backward_returns_initial_state_gradient() {
        // For a 1-step sequence, dL/dh0 is easy to check numerically by
        // shifting h0 (which requires a custom encode-from-h0 helper).
        let mut rng = StdRng::seed_from_u64(23);
        let cell = GruCell::new(&mut rng, 2, 4);
        let x = vec![0.3, -0.7];
        let h0 = vec![0.1, -0.2, 0.05, 0.4];
        let c = [1.0, -1.0, 0.5, 0.25];

        let mut h = h0.clone();
        let mut cache = GruCache::default();
        cell.step_cached(&mut h, &x, &mut cache);
        let mut grads = GruGrads::zeros(&cell);
        let dh0 = cell.backward(&cache, &c, &mut grads);

        let mut h0_probe = h0.clone();
        let err = crate::gradient_check(
            &mut h0_probe,
            &dh0,
            |p| {
                let mut h = p.to_vec();
                cell.step(&mut h, &x);
                h.iter().zip(&c).map(|(a, b)| a * b).sum()
            },
            1e-5,
        );
        assert!(err < 1e-6, "dh0 error {err}");
    }

    #[test]
    fn training_pulls_embeddings_together() {
        // Minimal sanity: gradient steps on ||h(a) - h(b)||² shrink the
        // distance between two fixed sequences' embeddings.
        let mut rng = StdRng::seed_from_u64(31);
        let mut cell = GruCell::new(&mut rng, 2, 8);
        let a = seq(&mut rng, 10, 2);
        let b = seq(&mut rng, 10, 2);
        let mut adam = Adam::new(0.01);

        let dist = |cell: &GruCell| crate::squared_distance(&cell.encode(&a), &cell.encode(&b));
        let before = dist(&cell);
        for _ in 0..60 {
            let mut ha = cell.initial_state();
            let mut ca = GruCache::default();
            for x in &a {
                cell.step_cached(&mut ha, x, &mut ca);
            }
            let mut hb = cell.initial_state();
            let mut cb = GruCache::default();
            for x in &b {
                cell.step_cached(&mut hb, x, &mut cb);
            }
            // d||ha-hb||²/dha = 2(ha-hb); /dhb = -2(ha-hb).
            let da: Vec<f64> = ha.iter().zip(&hb).map(|(x, y)| 2.0 * (x - y)).collect();
            let db: Vec<f64> = da.iter().map(|v| -v).collect();
            let mut grads = GruGrads::zeros(&cell);
            cell.backward(&ca, &da, &mut grads);
            cell.backward(&cb, &db, &mut grads);
            cell.apply_grads(&grads, &mut adam);
        }
        let after = dist(&cell);
        assert!(after < before * 0.5, "distance {before} -> {after}");
    }
}
