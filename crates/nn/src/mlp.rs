use crate::adam::Adam;
use crate::linear::{Linear, LinearGrads};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Element-wise activation functions used by the SimSub networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// `max(0, x)` — hidden layer of the Q-network (paper §6.1).
    Relu,
    /// `1 / (1 + e^-x)` — output layer of the Q-network (paper §6.1).
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// No-op.
    Identity,
}

impl Activation {
    #[inline]
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x,
        }
    }

    /// Derivative expressed in terms of the *output* value `y = f(x)`,
    /// which is what the cached forward pass stores.
    #[inline]
    fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
            Activation::Identity => 1.0,
        }
    }
}

/// A multi-layer perceptron: alternating [`Linear`] layers and activations.
///
/// The SimSub Q-network is `Mlp::new(rng, &[3, 20, 2 + k],
/// &[Activation::Relu, Activation::Sigmoid])` per Section 6.1 of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
    activations: Vec<Activation>,
}

/// Per-layer post-activation values cached by [`Mlp::forward_cached`] for
/// use by [`Mlp::backward`]. Reusable across calls without reallocating.
#[derive(Debug, Clone, Default)]
pub struct MlpCache {
    /// `outputs[l]` is the post-activation output of layer `l`.
    outputs: Vec<Vec<f64>>,
}

/// Gradients for every layer of an [`Mlp`].
#[derive(Debug, Clone, Default)]
pub struct MlpGrads {
    /// One gradient accumulator per layer.
    pub layers: Vec<LinearGrads>,
}

impl Mlp {
    /// Builds an MLP with `dims = [in, hidden..., out]` and one activation
    /// per layer (`activations.len() == dims.len() - 1`).
    pub fn new<R: Rng>(rng: &mut R, dims: &[usize], activations: &[Activation]) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        assert_eq!(
            activations.len(),
            dims.len() - 1,
            "one activation per layer"
        );
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(rng, w[0], w[1]))
            .collect();
        Self {
            layers,
            activations: activations.to_vec(),
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers.first().map(|l| l.in_dim).unwrap_or(0)
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().map(|l| l.out_dim).unwrap_or(0)
    }

    /// Total number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Linear::param_count).sum()
    }

    /// Convenience forward pass allocating a fresh output vector.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut cache = MlpCache::default();
        self.forward_cached(x, &mut cache);
        cache.outputs.last().cloned().unwrap_or_default()
    }

    /// Forward pass that records every layer's output in `cache`;
    /// returns the final output slice.
    pub fn forward_cached<'c>(&self, x: &[f64], cache: &'c mut MlpCache) -> &'c [f64] {
        cache.outputs.resize(self.layers.len(), Vec::new());
        let mut input: &[f64] = x;
        // Split borrows: walk layer by layer writing into cache.outputs[l].
        for l in 0..self.layers.len() {
            let (done, rest) = cache.outputs.split_at_mut(l);
            let out = &mut rest[0];
            let layer_in: &[f64] = if l == 0 { input } else { &done[l - 1] };
            self.layers[l].forward(layer_in, out);
            for v in out.iter_mut() {
                *v = self.activations[l].apply(*v);
            }
            input = &[]; // silence unused after first iteration
            let _ = input;
        }
        cache.outputs.last().map(Vec::as_slice).unwrap_or(&[])
    }

    /// Backward pass: given the input `x` of the recorded forward pass and
    /// the loss gradient w.r.t. the network output, accumulates parameter
    /// gradients into `grads`.
    pub fn backward(&self, x: &[f64], cache: &MlpCache, dloss_dout: &[f64], grads: &mut MlpGrads) {
        assert_eq!(cache.outputs.len(), self.layers.len(), "cache mismatch");
        grads.ensure_shape(self);
        let n = self.layers.len();
        // delta starts at the output and is pulled back layer by layer.
        let mut delta: Vec<f64> = dloss_dout.to_vec();
        for l in (0..n).rev() {
            // Chain through the activation.
            for (d, y) in delta.iter_mut().zip(&cache.outputs[l]) {
                *d *= self.activations[l].derivative_from_output(*y);
            }
            let layer_in: &[f64] = if l == 0 { x } else { &cache.outputs[l - 1] };
            if l == 0 {
                self.layers[l].backward(layer_in, &delta, &mut grads.layers[l], None);
            } else {
                let mut dx = vec![0.0; self.layers[l].in_dim];
                self.layers[l].backward(layer_in, &delta, &mut grads.layers[l], Some(&mut dx));
                delta = dx;
            }
        }
    }

    /// Applies an Adam update using accumulated gradients.
    pub fn apply_grads(&mut self, grads: &MlpGrads, adam: &mut Adam) {
        adam.begin_step();
        for (layer, g) in self.layers.iter_mut().zip(&grads.layers) {
            adam.update(&mut layer.w, &g.gw);
            adam.update(&mut layer.b, &g.gb);
        }
    }

    /// Copies all parameters from `other` — the DQN target-network sync.
    pub fn copy_from(&mut self, other: &Mlp) {
        assert_eq!(self.layers.len(), other.layers.len());
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            a.copy_from(b);
        }
    }

    /// Flattens all parameters (for tests and checksums).
    pub fn flat_params(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.param_count());
        for l in &self.layers {
            out.extend_from_slice(&l.w);
            out.extend_from_slice(&l.b);
        }
        out
    }

    /// Borrow of the constituent layers and activations (persistence).
    pub fn parts(&self) -> (&[Linear], &[Activation]) {
        (&self.layers, &self.activations)
    }

    /// Rebuilds an MLP from layers and activations, validating that
    /// consecutive layer shapes chain and counts match.
    pub fn from_parts(
        layers: Vec<Linear>,
        activations: Vec<Activation>,
    ) -> Result<Self, &'static str> {
        if layers.is_empty() {
            return Err("need at least one layer");
        }
        if layers.len() != activations.len() {
            return Err("one activation per layer");
        }
        for w in layers.windows(2) {
            if w[0].out_dim != w[1].in_dim {
                return Err("layer shapes do not chain");
            }
        }
        Ok(Self {
            layers,
            activations,
        })
    }

    /// Loads parameters from a flat vector produced by [`Mlp::flat_params`].
    pub fn set_flat_params(&mut self, flat: &[f64]) {
        assert_eq!(flat.len(), self.param_count());
        let mut off = 0;
        for l in &mut self.layers {
            let wl = l.w.len();
            l.w.copy_from_slice(&flat[off..off + wl]);
            off += wl;
            let bl = l.b.len();
            l.b.copy_from_slice(&flat[off..off + bl]);
            off += bl;
        }
    }
}

impl MlpGrads {
    /// Zeroed gradients shaped like `mlp`.
    pub fn zeros(mlp: &Mlp) -> Self {
        Self {
            layers: mlp.layers.iter().map(LinearGrads::zeros).collect(),
        }
    }

    fn ensure_shape(&mut self, mlp: &Mlp) {
        if self.layers.len() != mlp.layers.len() {
            *self = Self::zeros(mlp);
        }
    }

    /// Resets all gradients to zero.
    pub fn zero(&mut self) {
        self.layers.iter_mut().for_each(LinearGrads::zero);
    }

    /// Scales all gradients (minibatch averaging).
    pub fn scale(&mut self, s: f64) {
        self.layers.iter_mut().for_each(|l| l.scale(s));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paper_qnet(n_actions: usize) -> Mlp {
        let mut rng = StdRng::seed_from_u64(11);
        Mlp::new(
            &mut rng,
            &[3, 20, n_actions],
            &[Activation::Relu, Activation::Sigmoid],
        )
    }

    #[test]
    fn shapes_match_paper_qnet() {
        let net = paper_qnet(2);
        assert_eq!(net.in_dim(), 3);
        assert_eq!(net.out_dim(), 2);
        assert_eq!(net.param_count(), 3 * 20 + 20 + 20 * 2 + 2);
        let out = net.forward(&[0.1, 0.2, 0.3]);
        assert_eq!(out.len(), 2);
        // Sigmoid outputs live in (0, 1).
        assert!(out.iter().all(|&v| v > 0.0 && v < 1.0));
    }

    #[test]
    fn forward_cached_equals_forward() {
        let net = paper_qnet(5);
        let x = [0.4, -0.2, 0.9];
        let mut cache = MlpCache::default();
        let cached = net.forward_cached(&x, &mut cache).to_vec();
        assert_eq!(cached, net.forward(&x));
    }

    #[test]
    fn backward_matches_finite_difference() {
        let net = paper_qnet(4);
        let x = [0.25, -0.5, 0.75];
        // Loss: weighted sum of outputs (covers all output coordinates).
        let c = [1.0, -2.0, 0.5, 0.25];

        let mut cache = MlpCache::default();
        net.forward_cached(&x, &mut cache);
        let mut grads = MlpGrads::zeros(&net);
        net.backward(&x, &cache, &c, &mut grads);

        // Flatten analytic grads in the same order as flat_params.
        let mut analytic = Vec::new();
        for g in &grads.layers {
            analytic.extend_from_slice(&g.gw);
            analytic.extend_from_slice(&g.gb);
        }

        let mut params = net.flat_params();
        let err = crate::gradient_check(
            &mut params,
            &analytic,
            |p| {
                let mut probe = net.clone();
                probe.set_flat_params(p);
                probe.forward(&x).iter().zip(&c).map(|(a, b)| a * b).sum()
            },
            1e-5,
        );
        assert!(err < 1e-5, "MLP gradient error {err}");
    }

    #[test]
    fn training_reduces_mse_on_regression_task() {
        // Fit y = sigmoid(2x0 - x1) with a small net; loss must drop.
        let mut rng = StdRng::seed_from_u64(42);
        let mut net = Mlp::new(
            &mut rng,
            &[2, 16, 1],
            &[Activation::Tanh, Activation::Sigmoid],
        );
        let mut adam = Adam::new(0.01);
        let data: Vec<([f64; 2], f64)> = (0..128)
            .map(|i| {
                let x0 = ((i * 37) % 64) as f64 / 32.0 - 1.0;
                let x1 = ((i * 13) % 64) as f64 / 32.0 - 1.0;
                ([x0, x1], 1.0 / (1.0 + (-(2.0 * x0 - x1)).exp()))
            })
            .collect();

        let mse = |net: &Mlp| -> f64 {
            data.iter()
                .map(|(x, y)| {
                    let p = net.forward(x)[0];
                    (p - y) * (p - y)
                })
                .sum::<f64>()
                / data.len() as f64
        };

        let before = mse(&net);
        let mut cache = MlpCache::default();
        let mut grads = MlpGrads::zeros(&net);
        for _ in 0..300 {
            grads.zero();
            for (x, y) in &data {
                let out = net.forward_cached(x, &mut cache);
                let d = [2.0 * (out[0] - y)];
                net.backward(x, &cache, &d, &mut grads);
            }
            grads.scale(1.0 / data.len() as f64);
            net.apply_grads(&grads, &mut adam);
        }
        let after = mse(&net);
        assert!(
            after < before / 10.0,
            "training failed to reduce loss: {before} -> {after}"
        );
    }

    #[test]
    fn copy_from_syncs_parameters() {
        let a = paper_qnet(3);
        let mut b = paper_qnet(3);
        // Perturb b.
        let mut p = b.flat_params();
        p.iter_mut().for_each(|v| *v += 1.0);
        b.set_flat_params(&p);
        assert_ne!(a.flat_params(), b.flat_params());
        b.copy_from(&a);
        assert_eq!(a.flat_params(), b.flat_params());
    }

    #[test]
    #[should_panic(expected = "one activation per layer")]
    fn mismatched_activations_panic() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = Mlp::new(&mut rng, &[2, 3, 1], &[Activation::Relu]);
    }
}
