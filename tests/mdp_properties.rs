//! Property-based invariants of the trajectory-splitting MDP (§5.1/§5.4),
//! exercised with arbitrary action sequences over generated data: the
//! learned policy can only be as good as the environment is correct.

use proptest::prelude::*;
use simsub::core::{ExactS, MdpConfig, SplitEnv, SubtrajSearch};
use simsub::data::{generate, DatasetSpec};
use simsub::measures::{Dtw, Measure};
use simsub::trajectory::Trajectory;

fn fixture(seed: u64) -> (Trajectory, Trajectory) {
    let spec = DatasetSpec {
        min_len: 4,
        max_len: 24,
        mean_len: 12,
        ..DatasetSpec::porto()
    };
    let trajs = generate(&spec, 2, seed);
    let qlen = trajs[1].len().min(6);
    let query = Trajectory::new_unchecked(99, trajs[1].points()[..qlen].to_vec());
    (trajs[0].clone(), query)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Rewards telescope: Σ r_t == final Θbest, for any action sequence
    /// and any skip budget (the §5.1 argument for the reward design).
    #[test]
    fn rewards_telescope(seed in 0u64..2000, k in 0usize..4, actions in proptest::collection::vec(0usize..6, 1..64)) {
        let (data, query) = fixture(seed);
        let cfg = MdpConfig { skip_actions: k, use_suffix: true };
        let mut env = SplitEnv::new(&Dtw, data.points(), query.points(), cfg);
        let mut total = 0.0;
        let mut i = 0;
        loop {
            let a = actions[i % actions.len()] % cfg.n_actions();
            let out = env.step(a);
            total += out.reward;
            i += 1;
            if out.done {
                break;
            }
        }
        let res = env.result();
        prop_assert!((total - res.similarity).abs() < 1e-9,
            "Σr = {total} vs Θbest = {}", res.similarity);
    }

    /// Every episode terminates within n steps and yields a valid range
    /// whose true distance never beats ExactS.
    #[test]
    fn episodes_terminate_and_are_sound(seed in 0u64..2000, k in 0usize..4, actions in proptest::collection::vec(0usize..6, 1..64)) {
        let (data, query) = fixture(seed);
        let cfg = MdpConfig { skip_actions: k, use_suffix: false };
        let mut env = SplitEnv::new(&Dtw, data.points(), query.points(), cfg);
        let mut steps = 0;
        loop {
            let a = actions[steps % actions.len()] % cfg.n_actions();
            if env.step(a).done {
                break;
            }
            steps += 1;
            prop_assert!(steps <= data.len(), "episode exceeded n steps");
        }
        let res = env.result();
        prop_assert!(res.range.end < data.len());
        let true_dist = Dtw.distance(res.range.slice(data.points()), query.points());
        let exact = ExactS.search(&Dtw, data.points(), query.points()).distance;
        prop_assert!(true_dist + 1e-9 >= exact);
        // Without suffix candidates, the recorded similarity is the true
        // prefix similarity only when no skips happened; with skips the
        // internal estimate is the simplified prefix, still in (0, 1].
        prop_assert!(res.similarity > 0.0 && res.similarity <= 1.0);
    }

    /// Scan statistics are consistent: scanned + skipped == points
    /// consumed, and skipped == 0 when k == 0.
    #[test]
    fn stats_are_consistent(seed in 0u64..2000, actions in proptest::collection::vec(0usize..2, 1..64)) {
        let (data, query) = fixture(seed);
        let mut env = SplitEnv::new(&Dtw, data.points(), query.points(), MdpConfig::rls());
        let mut i = 0;
        loop {
            if env.step(actions[i % actions.len()]).done {
                break;
            }
            i += 1;
        }
        let stats = env.stats();
        prop_assert_eq!(stats.skipped, 0);
        prop_assert_eq!(stats.scanned, data.len());
    }

    /// With skipping, scanned + skipped covers exactly the points up to
    /// the last scanned one.
    #[test]
    fn skip_accounting(seed in 0u64..2000, actions in proptest::collection::vec(0usize..5, 1..64)) {
        let (data, query) = fixture(seed);
        let cfg = MdpConfig::rls_skip(3);
        let mut env = SplitEnv::new(&Dtw, data.points(), query.points(), cfg);
        let mut i = 0;
        loop {
            if env.step(actions[i % actions.len()]).done {
                break;
            }
            i += 1;
        }
        let stats = env.stats();
        // Every point is either scanned or skipped; the episode always
        // ends on the last point.
        prop_assert_eq!(stats.scanned + stats.skipped, data.len());
    }
}
