//! Conformance harness for the bulk evaluator kernels: for **every**
//! measure's `PrefixEvaluator`, the slice `extend_run` /
//! `extend_run_into` APIs must be bitwise-indistinguishable from the
//! scalar point-by-point `extend` chain — same final similarity bits,
//! same per-point similarity bits, invariant under chunk boundaries
//! (`extend_run(a); extend_run(b)` ≡ `extend_run(a ++ b)`, including
//! empty chunks), and unchanged after `reset`. On top of the kernel
//! contract, differential tests pin the *search-path* consequence: the
//! arena-backed PSS/SizeS split scoring must pick the identical winner
//! index as the scalar AoS scan on tie-heavy duplicated-point corpora.

mod common;

use common::assert_bitwise_topk;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simsub::core::{sort_hits_and_truncate, Pss, SizeS, SubtrajSearch, TopKResult};
use simsub::index::TrajectoryDb;
use simsub::measures::{Cdtw, CoordNormalizer, Dtw, Edr, Erp, Frechet, Lcss, Measure, T2Vec};
use simsub::trajectory::{Point, Trajectory};

/// All seven evaluator families under conformance. The t2vec instance is
/// a deterministic untrained encoder — the kernel contract is about
/// arithmetic, not model quality.
fn all_measures() -> Vec<Box<dyn Measure>> {
    vec![
        Box::new(Dtw),
        Box::new(Frechet),
        Box::new(Cdtw::new(2)),
        Box::new(Edr::new(0.5)),
        Box::new(Erp::new()),
        Box::new(Lcss::new(0.5)),
        Box::new(T2Vec::random(7, 6, CoordNormalizer::identity())),
    ]
}

fn pts(v: &[(f64, f64)]) -> Vec<Point> {
    v.iter()
        .enumerate()
        .map(|(i, &(x, y))| Point::new(x, y, i as f64))
        .collect()
}

fn soa(data: &[Point]) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    (
        data.iter().map(|p| p.x).collect(),
        data.iter().map(|p| p.y).collect(),
        data.iter().map(|p| p.t).collect(),
    )
}

/// Continuous coordinates (generic case).
fn arb_traj(max_len: usize) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 1..max_len).prop_map(|v| pts(&v))
}

/// Adversarial coordinates on a tiny integer grid: heavy point
/// duplication produces equal distances (and therefore DP ties) all over
/// the matrix, the regime where an order-of-evaluation slip in a bulk
/// kernel would change a winner.
fn arb_grid_traj(max_len: usize) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec((0u8..3, 0u8..3), 1..max_len).prop_map(|v| {
        pts(&v
            .iter()
            .map(|&(x, y)| (x as f64, y as f64))
            .collect::<Vec<_>>())
    })
}

/// The full conformance battery for one (measure, query, data) triple.
fn check_conformance(measure: &dyn Measure, query: &[Point], data: &[Point], split: usize) {
    // Scalar reference: init at p0, then one virtual `extend` per point,
    // recording every intermediate similarity.
    let mut reference = measure.prefix_evaluator(query);
    reference.init(data[0]);
    let mut ref_sims = Vec::with_capacity(data.len() - 1);
    for &p in &data[1..] {
        ref_sims.push(reference.extend(p));
    }
    let ref_final = reference.similarity();
    let name = measure.name();

    let (xs, ys, ts) = soa(data);

    // (a) One bulk run over the whole tail (empty when |data| = 1).
    let mut eval = measure.prefix_evaluator(query);
    eval.init(data[0]);
    let got = eval.extend_run(&xs[1..], &ys[1..], &ts[1..]);
    assert_eq!(got.to_bits(), ref_final.to_bits(), "{name}: full-slab run");
    assert_eq!(
        eval.similarity().to_bits(),
        ref_final.to_bits(),
        "{name}: state after full-slab run"
    );

    // (b) Per-point readout variant.
    let mut eval = measure.prefix_evaluator(query);
    eval.init(data[0]);
    let mut sims = vec![0.0; data.len() - 1];
    let got = eval.extend_run_into(&xs[1..], &ys[1..], &ts[1..], &mut sims);
    assert_eq!(got.to_bits(), ref_final.to_bits(), "{name}: run_into final");
    for (i, (s, r)) in sims.iter().zip(&ref_sims).enumerate() {
        assert_eq!(s.to_bits(), r.to_bits(), "{name}: run_into point {i}");
    }

    // (c) Chunking invariance: split the tail at an arbitrary cut (either
    // side may be empty) — two runs must equal the one-run chain.
    let cut = 1 + split % data.len();
    let mut eval = measure.prefix_evaluator(query);
    eval.init(data[0]);
    eval.extend_run(&xs[1..cut], &ys[1..cut], &ts[1..cut]);
    let got = eval.extend_run(&xs[cut..], &ys[cut..], &ts[cut..]);
    assert_eq!(
        got.to_bits(),
        ref_final.to_bits(),
        "{name}: chunked run (cut at {cut})"
    );

    // (d) Reuse after `reset` re-targets the same buffers: the bulk chain
    // must reproduce the fresh-evaluator bits.
    eval.reset(query);
    eval.init(data[0]);
    let got = eval.extend_run(&xs[1..], &ys[1..], &ts[1..]);
    assert_eq!(
        got.to_bits(),
        ref_final.to_bits(),
        "{name}: run after reset"
    );

    // (e) Cell-row factoring, where supported: a coordinate-only
    // `fill_cell_rows` pass plus rows-fed `extend_run_rows_into` runs
    // must reproduce the scalar bits too — whole tail, per point, and
    // across an arbitrary chunk cut (the prefix stream refills in
    // chunks). Measures without the factoring return `None` and are
    // covered by (a)-(d) alone.
    let mut eval = measure.prefix_evaluator(query);
    let mut rows = Vec::new();
    if let Some(m) = eval.fill_cell_rows(&xs, &ys, &ts, &mut rows) {
        assert_eq!(rows.len(), data.len() * m, "{name}: cell-rows shape");
        eval.init(data[0]);
        let mut sims = vec![0.0; data.len() - 1];
        let got = eval.extend_run_rows_into(&rows[m..], &mut sims);
        assert_eq!(got.to_bits(), ref_final.to_bits(), "{name}: rows run final");
        for (i, (s, r)) in sims.iter().zip(&ref_sims).enumerate() {
            assert_eq!(s.to_bits(), r.to_bits(), "{name}: rows run point {i}");
        }
        eval.init(data[0]);
        eval.extend_run_rows_into(&rows[m..cut * m], &mut sims[..cut - 1]);
        let got = eval.extend_run_rows_into(&rows[cut * m..], &mut sims[cut - 1..]);
        assert_eq!(
            got.to_bits(),
            ref_final.to_bits(),
            "{name}: chunked rows run (cut at {cut})"
        );
        for (i, (s, r)) in sims.iter().zip(&ref_sims).enumerate() {
            assert_eq!(s.to_bits(), r.to_bits(), "{name}: chunked rows point {i}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline contract, continuous coordinates: for all seven
    /// evaluators, bulk == scalar bitwise (final value, per-point values,
    /// chunked calls, after reset).
    #[test]
    fn bulk_extend_run_matches_scalar_chain(
        data in arb_traj(16),
        query in arb_traj(8),
        split in 0usize..16,
    ) {
        for measure in all_measures() {
            check_conformance(measure.as_ref(), &query, &data, split);
        }
    }

    /// The same contract under adversarial tie-heavy grid inputs
    /// (duplicated points, equal distances everywhere).
    #[test]
    fn bulk_extend_run_matches_scalar_chain_on_duplicated_grid(
        data in arb_grid_traj(16),
        query in arb_grid_traj(6),
        split in 0usize..16,
    ) {
        for measure in all_measures() {
            check_conformance(measure.as_ref(), &query, &data, split);
        }
    }
}

/// Tie-heavy corpus: every trajectory walks the same 3×3 grid, so split
/// candidates collide in score constantly — across positions within a
/// trajectory and across trajectories in the ranking.
fn grid_corpus(seed: u64, count: usize) -> Vec<Trajectory> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x71e5);
    (0..count)
        .map(|i| {
            let len = rng.gen_range(3usize..14);
            let coords: Vec<(f64, f64)> = (0..len)
                .map(|_| (rng.gen_range(0u8..3) as f64, rng.gen_range(0u8..3) as f64))
                .collect();
            Trajectory::new_unchecked(i as u64, pts(&coords))
        })
        .collect()
}

/// Pre-arena reference ranking: the allocating scalar AoS `search` per
/// trajectory, through the shared comparator.
fn reference_top_k(
    algo: &dyn SubtrajSearch,
    measure: &dyn Measure,
    corpus: &[Trajectory],
    query: &[Point],
    k: usize,
) -> Vec<TopKResult> {
    let mut hits: Vec<TopKResult> = corpus
        .iter()
        .map(|t| TopKResult {
            trajectory_id: t.id,
            result: algo.search(measure, t.points(), query),
        })
        .collect();
    sort_hits_and_truncate(&mut hits, k);
    hits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Differential tie-breaking pin: the bulk-kernel view scans behind
    /// `search_with` (PSS's speculative prefix stream + bulk suffix pass,
    /// SizeS's windowed bulk scoring) must report the *identical* winner
    /// (trajectory, split, score bits) as the scalar path on corpora
    /// engineered for score ties.
    #[test]
    fn pss_and_sizes_split_winners_match_scalar_on_ties(
        seed in 0u64..5_000,
        count in 1usize..12,
        k in 1usize..5,
        qlen in 1usize..6,
    ) {
        let corpus = grid_corpus(seed, count);
        let query = pts(
            &(0..qlen)
                .map(|i| (((seed as usize + i) % 3) as f64, ((seed as usize + 2 * i) % 3) as f64))
                .collect::<Vec<_>>(),
        );
        let db = TrajectoryDb::build(corpus.clone());
        for measure in [&Dtw as &dyn Measure, &Frechet as &dyn Measure] {
            for algo in [
                &Pss as &(dyn SubtrajSearch + Sync),
                &SizeS::new(0),
                &SizeS::new(2),
                &SizeS::default(),
            ] {
                let want = reference_top_k(algo, measure, &corpus, &query, k);
                let got = db.top_k(algo, measure, &query, k, false);
                assert_bitwise_topk(
                    &got,
                    &want,
                    &format!("measure={} algo={} k={k}", measure.name(), algo.name()),
                );
            }
        }
    }
}
