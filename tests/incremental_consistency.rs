//! Property-based cross-crate invariants on the measure abstraction: the
//! incremental evaluators (`Φini`/`Φinc`) must agree with from-scratch
//! computation (`Φ`) for every measure, on realistic generated data — the
//! contract every search algorithm in `simsub-core` relies on.

use proptest::prelude::*;
use simsub::core::suffix_similarities;
use simsub::data::{generate, DatasetSpec};
use simsub::measures::{CoordNormalizer, Dtw, Frechet, Measure, T2Vec};

fn measures() -> Vec<Box<dyn Measure>> {
    vec![
        Box::new(Dtw),
        Box::new(Frechet),
        Box::new(T2Vec::random(5, 8, CoordNormalizer::identity())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn incremental_equals_from_scratch(seed in 0u64..10_000) {
        let spec = DatasetSpec {
            min_len: 6,
            max_len: 18,
            mean_len: 10,
            ..DatasetSpec::porto()
        };
        let trajs = generate(&spec, 2, seed);
        let data = trajs[0].points();
        let query = &trajs[1].points()[..6];
        for measure in measures() {
            let mut eval = measure.prefix_evaluator(query);
            for i in (0..data.len()).step_by(3) {
                eval.init(data[i]);
                for j in i..data.len() {
                    if j > i {
                        eval.extend(data[j]);
                    }
                    let scratch = measure.distance(&data[i..=j], query);
                    prop_assert!(
                        (eval.distance() - scratch).abs() < 1e-6 * (1.0 + scratch),
                        "{}: i={i} j={j}: {} vs {}",
                        measure.name(), eval.distance(), scratch
                    );
                }
            }
        }
    }

    #[test]
    fn suffix_pass_equals_direct_for_reversal_invariant_measures(seed in 0u64..10_000) {
        let spec = DatasetSpec {
            min_len: 5,
            max_len: 14,
            mean_len: 8,
            ..DatasetSpec::porto()
        };
        let trajs = generate(&spec, 2, seed);
        let data = trajs[0].points();
        let query = &trajs[1].points()[..5];
        for measure in [&Dtw as &dyn Measure, &Frechet] {
            let suffix = suffix_similarities(measure, data, query);
            for (i, &s) in suffix.iter().enumerate() {
                let direct = measure.similarity(&data[i..], query);
                prop_assert!(
                    (s - direct).abs() < 1e-9,
                    "{} suffix {i}: {s} vs {direct}",
                    measure.name()
                );
            }
        }
    }

    #[test]
    fn similarity_and_distance_are_consistent(seed in 0u64..10_000) {
        let spec = DatasetSpec::porto();
        let trajs = generate(&spec, 2, seed);
        let a = &trajs[0].points()[..12];
        let b = &trajs[1].points()[..8];
        for measure in measures() {
            let d = measure.distance(a, b);
            let s = measure.similarity(a, b);
            prop_assert!((s - 1.0 / (1.0 + d)).abs() < 1e-12);
            // Identity of indiscernibles at the similarity level.
            prop_assert!(measure.similarity(a, a) > s || d == 0.0);
        }
    }
}
