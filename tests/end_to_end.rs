//! End-to-end pipeline test: generate a corpus → train the learned
//! measure and an RLS policy → run database search → compute
//! effectiveness metrics. Exercises every crate in one flow.

use simsub::core::{
    exhaustive_ranking, train_rls, EffectivenessMetrics, ExactS, MdpConfig, MetricsAccumulator,
    Pss, Rls, RlsTrainConfig, SubtrajSearch,
};
use simsub::data::{extract_query, generate, sample_pairs, DatasetSpec};
use simsub::index::TrajectoryDb;
use simsub::measures::{Measure, T2Vec, T2VecConfig};
use simsub::trajectory::Trajectory;

#[test]
fn full_pipeline_t2vec_rls() {
    // 1. Data.
    let corpus = generate(&DatasetSpec::porto(), 60, 4242);

    // 2. Learned measure.
    let (t2vec, _) = T2Vec::train(
        &corpus,
        &T2VecConfig {
            steps: 60,
            ..Default::default()
        },
    );

    // 3. RLS policy over that measure (suffix dropped, per the paper).
    let mdp = MdpConfig {
        skip_actions: 0,
        use_suffix: false,
    };
    let queries: Vec<Trajectory> = corpus
        .iter()
        .map(|t| Trajectory::new_unchecked(t.id, t.points()[..t.len().min(15)].to_vec()))
        .collect();
    let report = train_rls(&t2vec, &corpus, &queries, &RlsTrainConfig::paper(mdp, 40));
    assert!(report.transitions > 0);
    let rls = Rls::new(report.policy, mdp);

    // 4. Metrics over held-out pairs.
    let pairs = sample_pairs(&corpus, 10, 12, 2);
    let mut acc_rls = MetricsAccumulator::new();
    let mut acc_pss = MetricsAccumulator::new();
    for pair in &pairs {
        let data = corpus[pair.data_idx].points();
        let query = pair.query.points();
        let ranking = exhaustive_ranking(&t2vec, data, query);
        acc_rls.add(EffectivenessMetrics::evaluate(
            &ranking,
            rls.search(&t2vec, data, query).range,
        ));
        acc_pss.add(EffectivenessMetrics::evaluate(
            &ranking,
            Pss.search(&t2vec, data, query).range,
        ));
    }
    let (m_rls, m_pss) = (acc_rls.mean(), acc_pss.mean());
    // Both are approximate: AR >= 1, RR within (0, 1]. No strict ordering
    // asserted at this training scale — fig3 does that at real scale.
    for m in [m_rls, m_pss] {
        assert!(m.ar >= 1.0 - 1e-9);
        assert!(m.rr > 0.0 && m.rr <= 1.0);
    }

    // 5. Database search with the index: the planted source of a query
    // must rank first.
    let db = TrajectoryDb::build(corpus.clone());
    let mut rng = rand::SeedableRng::seed_from_u64(8);
    let probe = extract_query(&corpus[33], 12, 0.0, 0.0, &mut rng);
    let hits = db.top_k(&ExactS, &t2vec, probe.points(), 3, false);
    assert_eq!(hits[0].trajectory_id, corpus[33].id);
}

#[test]
fn index_pruning_loses_few_results() {
    // Reproduces the §6.2(4) claim qualitatively: indexed and full-scan
    // top-k under DTW agree on most results (for DTW the paper observed
    // zero loss on Porto).
    let corpus = generate(&DatasetSpec::porto(), 120, 77);
    let db = TrajectoryDb::build(corpus.clone());
    let pairs = sample_pairs(&corpus, 8, 15, 5);
    let mut overlap = 0usize;
    let mut total = 0usize;
    for pair in &pairs {
        let q = pair.query.points();
        let full = db.top_k(&Pss, &simsub::measures::Dtw, q, 10, false);
        let pruned = db.top_k(&Pss, &simsub::measures::Dtw, q, 10, true);
        let full_ids: std::collections::HashSet<u64> =
            full.iter().map(|h| h.trajectory_id).collect();
        overlap += pruned
            .iter()
            .filter(|h| full_ids.contains(&h.trajectory_id))
            .count();
        total += full.len();
    }
    let recall = overlap as f64 / total as f64;
    assert!(
        recall >= 0.5,
        "index pruning lost too many results: recall {recall:.2}"
    );
}

#[test]
fn measures_disagree_but_rankings_are_sane() {
    // The three measures are different functions, but each must rank an
    // embedded noisy copy of the query above a random other trajectory.
    let corpus = generate(&DatasetSpec::porto(), 20, 3);
    let (t2vec, _) = T2Vec::train(
        &corpus,
        &T2VecConfig {
            steps: 80,
            ..Default::default()
        },
    );
    let measures: [&dyn Measure; 3] = [&simsub::measures::Dtw, &simsub::measures::Frechet, &t2vec];
    let mut rng = rand::SeedableRng::seed_from_u64(21);
    for source in [0usize, 5, 10] {
        // Noise of ~10 m in the km-scale coordinate units.
        let query = extract_query(&corpus[source], 15, 0.2, 0.01, &mut rng);
        for measure in measures {
            let d_source = ExactS
                .search(measure, corpus[source].points(), query.points())
                .distance;
            let d_other = ExactS
                .search(measure, corpus[(source + 7) % 20].points(), query.points())
                .distance;
            assert!(
                d_source < d_other,
                "{}: source {} not preferred ({} vs {})",
                measure.name(),
                source,
                d_source,
                d_other
            );
        }
    }
}
