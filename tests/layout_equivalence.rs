//! Property harness for the columnar-layout contract: arena-backed scans
//! (SoA slabs, precomputed MBR tables, slice DP kernels, zero-copy
//! `TrajView`s) must be **byte-identical** — same ids, same ranges, same
//! score bit patterns, same order — to the pre-arena `Vec<Point>` path
//! (the allocating per-trajectory `SubtrajSearch::search` over AoS
//! points, ranked through `sort_hits_and_truncate`), across measures on
//! the search path (DTW, discrete Frechet, a trained t2vec model), both
//! service-default algorithms (ExactS, PSS), shard counts 1..4, and
//! prune on/off. The packed binary corpus format must round-trip the
//! arena bit-exactly and reject corrupt or truncated files.

mod common;

use common::assert_bitwise_topk;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simsub::core::{sort_hits_and_truncate, ExactS, Pss, SubtrajSearch, TopKResult};
use simsub::data::{read_bin, write_bin, BinCorpusError};
use simsub::index::{PartitionerKind, ShardedDb, TrajectoryDb};
use simsub::measures::{Dtw, Frechet, Measure, T2Vec, T2VecConfig};
use simsub::trajectory::{CorpusArena, Point, Trajectory};

const SHARD_COUNTS: std::ops::RangeInclusive<usize> = 1..=4;

fn walk(seed: u64, len: usize, origin: (f64, f64)) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut x, mut y) = origin;
    (0..len)
        .map(|i| {
            x += rng.gen_range(-1.5..1.5);
            y += rng.gen_range(-1.5..1.5);
            Point::new(x, y, i as f64)
        })
        .collect()
}

/// Mixed spatial layout (clustered near the origin + spread far away) so
/// both pruning regimes occur.
fn random_corpus(seed: u64, count: usize) -> Vec<Trajectory> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc01d_cafe);
    (0..count)
        .map(|i| {
            let origin = if i % 3 == 0 {
                (0.0, 0.0)
            } else {
                (rng.gen_range(-90.0..90.0), rng.gen_range(-90.0..90.0))
            };
            let len = rng.gen_range(5usize..18);
            Trajectory::new_unchecked(i as u64, walk(seed.wrapping_add(i as u64), len, origin))
        })
        .collect()
}

/// The pre-arena reference: the allocating AoS `search` per trajectory,
/// ranked through the shared comparator. This touches neither the arena,
/// the workspace reuse, the slice kernels, nor the bound cascade.
fn reference_top_k(
    algo: &dyn SubtrajSearch,
    measure: &dyn Measure,
    corpus: &[Trajectory],
    query: &[Point],
    k: usize,
) -> Vec<TopKResult> {
    let mut hits: Vec<TopKResult> = corpus
        .iter()
        .map(|t| TopKResult {
            trajectory_id: t.id,
            result: algo.search(measure, t.points(), query),
        })
        .collect();
    sort_hits_and_truncate(&mut hits, k);
    hits
}

/// Arena-backed scans across every path must equal the pre-arena
/// reference bit for bit.
fn check_layout_equivalence(
    corpus: &[Trajectory],
    algo: &(dyn SubtrajSearch + Sync),
    measure: &dyn Measure,
    query: &[Point],
    k: usize,
) {
    let context_base = format!("measure={} algo={} k={k}", measure.name(), algo.name());
    let want = reference_top_k(algo, measure, corpus, query, k);

    let db = TrajectoryDb::build(corpus.to_vec());
    for prune in [false, true] {
        let context = format!("{context_base} prune={prune}");
        let (got, stats) = db.top_k_with_stats(algo, measure, query, k, false, prune);
        assert_bitwise_topk(&got, &want, &format!("db full scan {context}"));
        assert!(stats.is_consistent(), "db stats: {context}");

        let (got_batch, _) = db.top_k_batch_with_stats(algo, measure, &[query], k, false, prune);
        assert_bitwise_topk(&got_batch[0], &want, &format!("db batch {context}"));

        for shards in SHARD_COUNTS {
            for kind in [PartitionerKind::Hash, PartitionerKind::Grid] {
                let sharded = ShardedDb::build(corpus.to_vec(), shards, kind);
                let context = format!("{context} shards={shards} kind={}", kind.name());
                let (got, stats) = sharded.top_k_with_stats(algo, measure, query, k, false, prune);
                assert_bitwise_topk(&got, &want, &format!("sharded {context}"));
                assert!(stats.is_consistent(), "sharded stats: {context}");
            }
        }
    }

    // Indexed scans agree with the indexed pre-arena filter: reference
    // restricted to R-tree candidates equals the indexed arena scan.
    let qmbr = simsub::trajectory::Mbr::of_points(query);
    let filtered: Vec<Trajectory> = corpus
        .iter()
        .filter(|t| t.mbr().intersects(&qmbr))
        .cloned()
        .collect();
    let want_indexed = reference_top_k(algo, measure, &filtered, query, k);
    let got_indexed = db.top_k(algo, measure, query, k, true);
    assert_bitwise_topk(
        &got_indexed,
        &want_indexed,
        &format!("indexed {context_base}"),
    );
}

/// Pack → load must reproduce the arena bit-exactly, and a database
/// reloaded from the packed form must answer byte-identically.
fn check_pack_round_trip(corpus: &[Trajectory], query: &[Point], k: usize) {
    let arena = CorpusArena::from_trajectories(corpus);
    let mut buf = Vec::new();
    write_bin(&mut buf, &arena).expect("pack");
    let back = read_bin(std::io::Cursor::new(&buf)).expect("load packed corpus");
    assert_eq!(back.ids(), arena.ids(), "id table");
    assert_eq!(back.offsets(), arena.offsets(), "offsets table");
    for (slabs, name) in [
        ((back.xs(), arena.xs()), "xs"),
        ((back.ys(), arena.ys()), "ys"),
        ((back.ts(), arena.ts()), "ts"),
    ] {
        assert_eq!(slabs.0.len(), slabs.1.len(), "{name} length");
        for (a, b) in slabs.0.iter().zip(slabs.1) {
            assert_eq!(a.to_bits(), b.to_bits(), "{name} slab bits");
        }
    }
    for s in 0..arena.len() {
        assert_eq!(back.mbr(s), arena.mbr(s), "recomputed MBR table");
    }
    if !corpus.is_empty() {
        let from_csv_path = TrajectoryDb::build(corpus.to_vec());
        let from_packed = TrajectoryDb::from_arena(back);
        let want = from_csv_path.top_k(&ExactS, &Dtw, query, k, false);
        let got = from_packed.top_k(&ExactS, &Dtw, query, k, false);
        assert_bitwise_topk(&got, &want, "packed reload answers");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline property: arena-backed scans are byte-identical to
    /// the pre-arena `Vec<Point>` path across DTW/Frechet × ExactS/PSS ×
    /// shard counts 1..4 × prune on/off.
    #[test]
    fn arena_scan_is_byte_identical_to_prearena_path(
        seed in 0u64..10_000,
        count in 1usize..24,
        k in 1usize..6,
        qlen in 3usize..9,
    ) {
        let corpus = random_corpus(seed, count);
        let query = walk(seed ^ 0xa7e4a, qlen, (0.0, 0.0));
        for measure in [&Dtw as &dyn Measure, &Frechet as &dyn Measure] {
            check_layout_equivalence(&corpus, &ExactS, measure, &query, k);
            check_layout_equivalence(&corpus, &Pss, measure, &query, k);
        }
    }

    /// Pack → load round-trip: slabs, tables, and reloaded answers are
    /// bit-exact for arbitrary corpora.
    #[test]
    fn packed_corpus_round_trips_bit_exactly(
        seed in 0u64..10_000,
        count in 0usize..20,
        k in 1usize..5,
    ) {
        let corpus = random_corpus(seed, count);
        let query = walk(seed ^ 0xb17, 6, (0.0, 0.0));
        check_pack_round_trip(&corpus, &query, k);
    }

    /// Any single flipped payload byte (or truncation point) must be
    /// rejected — never silently load different data.
    #[test]
    fn corrupt_and_truncated_packed_corpora_are_rejected(
        seed in 0u64..10_000,
        flip in 8usize..10_000,
        cut in 0usize..10_000,
    ) {
        let corpus = random_corpus(seed, 6);
        let arena = CorpusArena::from_trajectories(&corpus);
        let mut buf = Vec::new();
        write_bin(&mut buf, &arena).expect("pack");

        let cut = cut % buf.len();
        if cut < buf.len() {
            let err = read_bin(std::io::Cursor::new(&buf[..cut]));
            prop_assert!(err.is_err(), "truncation at {cut} must fail");
        }

        let flip = 8 + flip % (buf.len() - 8); // keep the magic intact
        let mut corrupted = buf.clone();
        corrupted[flip] ^= 0x20;
        match read_bin(std::io::Cursor::new(&corrupted)) {
            Err(_) => {}
            Ok(loaded) => {
                // The flip landed in a checksummed byte, so reaching here
                // is impossible; spell the failure out if it ever happens.
                prop_assert!(
                    false,
                    "flipped byte {flip} loaded silently ({} trajectories)",
                    loaded.len()
                );
            }
        }
    }
}

/// The learned measure takes the staged fallback path (no slice kernel,
/// no bounds): arena scans must still match the pre-arena reference with
/// a trained model.
#[test]
fn t2vec_arena_scans_match_prearena_path() {
    let corpus = random_corpus(21, 14);
    let cfg = T2VecConfig {
        steps: 40,
        hidden_dim: 8,
        seed: 5,
        ..Default::default()
    };
    let (model, _sep) = T2Vec::train(&corpus, &cfg);
    let query = walk(0xfeed, 7, (0.0, 0.0));
    check_layout_equivalence(&corpus, &ExactS, &model, &query, 3);
    check_layout_equivalence(&corpus, &Pss, &model, &query, 3);
}

/// Bad magic and trailing garbage are typed errors, not panics.
#[test]
fn packed_corpus_rejects_foreign_files() {
    assert!(matches!(
        read_bin(std::io::Cursor::new(b"id,x,y,t\n0,1,2,3\n".to_vec())),
        Err(BinCorpusError::BadMagic)
    ));
    let corpus = random_corpus(3, 4);
    let mut buf = Vec::new();
    write_bin(&mut buf, &CorpusArena::from_trajectories(&corpus)).unwrap();
    buf.extend_from_slice(b"extra");
    assert!(matches!(
        read_bin(std::io::Cursor::new(&buf)),
        Err(BinCorpusError::TrailingBytes)
    ));
}

/// A packed corpus with duplicate ids decodes but must fail arena
/// validation (the `from_arena` builders would otherwise panic later).
#[test]
fn packed_corpus_rejects_duplicate_ids() {
    let t = Trajectory::new_unchecked(9, walk(1, 5, (0.0, 0.0)));
    let arena_ok = CorpusArena::from_trajectories(&[t]);
    // Hand-craft slabs with a duplicated id through the public raw-slab
    // constructor to mimic a malicious file.
    let ids = vec![9, 9];
    let mut offsets = arena_ok.offsets().to_vec();
    offsets.push(arena_ok.total_points() * 2);
    let double =
        |s: &[f64]| -> Vec<f64> { s.iter().chain(s.iter()).copied().collect::<Vec<f64>>() };
    let err = CorpusArena::from_raw_slabs(
        ids,
        offsets,
        double(arena_ok.xs()),
        double(arena_ok.ys()),
        double(arena_ok.ts()),
    )
    .unwrap_err();
    assert_eq!(err, simsub::trajectory::ArenaError::DuplicateId(9));
}
