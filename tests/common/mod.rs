//! Shared assertions for the bitwise-equivalence harnesses
//! (`tests/layout_equivalence.rs`, `tests/evaluator_conformance.rs`).

use simsub::core::TopKResult;

/// Byte-level top-k equality: same hit count, and per rank the same
/// trajectory id, split range, and exact score bit patterns. On a
/// mismatch, panics with the first diverging `(trajectory, split, score)`
/// triple on both sides, bits included, so a one-ULP drift is readable
/// straight from the failure message.
pub fn assert_bitwise_topk(got: &[TopKResult], want: &[TopKResult], context: &str) {
    assert_eq!(
        got.len(),
        want.len(),
        "hit count differs ({} vs {}): {context}",
        got.len(),
        want.len()
    );
    for (rank, (g, w)) in got.iter().zip(want).enumerate() {
        let diverges = g.trajectory_id != w.trajectory_id
            || g.result.range != w.result.range
            || g.result.similarity.to_bits() != w.result.similarity.to_bits()
            || g.result.distance.to_bits() != w.result.distance.to_bits();
        if diverges {
            panic!(
                "top-k diverges at rank {rank} ({context}):\n  \
                 got  trajectory {} split {} score {:.17e} [{:#018x}]\n  \
                 want trajectory {} split {} score {:.17e} [{:#018x}]",
                g.trajectory_id,
                g.result.range,
                g.result.similarity,
                g.result.similarity.to_bits(),
                w.trajectory_id,
                w.result.range,
                w.result.similarity,
                w.result.similarity.to_bits(),
            );
        }
    }
}
