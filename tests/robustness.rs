//! Chaos harness for the serve path's bulkheads: panic-isolated scan
//! dispatch, worker supervision and respawn, bounded admission with
//! load-shedding, per-request deadlines, oversized/hostile wire input,
//! and panic-tolerant shutdown.
//!
//! The contract under test: **a fault degrades one request, never the
//! process**. Every connection gets a well-formed response or a
//! structured error, answers produced under fault injection are
//! byte-identical to fault-free answers, and after the chaos the stats
//! reconcile: `admitted == answered + shed + expired + internal`.
//!
//! Every engine in this file pins `EngineConfig::faults` explicitly
//! (`Some(spec)`, with `Some("")` meaning *forced disarmed*), so the
//! assertions stay deterministic even when the CI matrix arms a global
//! `SIMSUB_FAULTS`. Like `service_engine.rs`, the file also runs under
//! `SIMSUB_SHARDS=4` and `SIMSUB_NO_PRUNE=1`, so nothing here assumes a
//! particular corpus layout or that pruning happened.

use proptest::prelude::*;
use simsub::data::{generate, DatasetSpec};
use simsub::index::{PartitionerKind, ShardedDb, TrajectoryDb};
use simsub::service::{
    json::Json, AlgoSpec, CorpusSnapshot, EngineConfig, MeasureSpec, QueryEngine, QueryRequest,
    Server, ServiceError, StatsSnapshot,
};
use simsub::trajectory::Point;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Once, OnceLock};
use std::time::Duration;

/// Injected panics are expected noise in this file; a hook that swallows
/// only their reports keeps test output readable while real panics still
/// print through the previous hook.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let injected = payload
                .downcast_ref::<&str>()
                .map(|s| s.contains("injected fault"))
                .or_else(|| {
                    payload
                        .downcast_ref::<String>()
                        .map(|s| s.contains("injected fault"))
                })
                .unwrap_or(false);
            if !injected {
                previous(info);
            }
        }));
    });
}

fn shared_db(count: usize) -> Arc<TrajectoryDb> {
    TrajectoryDb::build(generate(&DatasetSpec::porto(), count, 42)).into_shared()
}

/// Mirrors `service_engine.rs`: sharded snapshot when `SIMSUB_SHARDS=N`
/// is set, so the CI matrix exercises the bulkheads both ways.
fn snapshot_for(db: &Arc<TrajectoryDb>) -> CorpusSnapshot {
    match std::env::var("SIMSUB_SHARDS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => CorpusSnapshot::sharded(
            ShardedDb::build(db.to_trajectories(), n, PartitionerKind::Hash).into_shared(),
        ),
        _ => CorpusSnapshot::new(Arc::clone(db)),
    }
}

fn request(query: Vec<Point>, k: usize) -> QueryRequest {
    QueryRequest {
        query,
        algo: AlgoSpec::Exact,
        measure: MeasureSpec::Dtw,
        k,
        use_index: true,
    }
}

/// Query slices cut from corpus trajectories, all distinct (different
/// lengths/sources), so sequential submissions are cache misses.
fn queries_from(db: &TrajectoryDb, n: usize) -> Vec<Vec<Point>> {
    (0..n)
        .map(|i| {
            let t = db.view(i % db.len());
            let len = (6 + i % 5).min(t.len());
            t.to_points()[..len].to_vec()
        })
        .collect()
}

/// The tentpole accounting identity: every admitted request is accounted
/// for exactly once — answered, shed, expired, or failed internally.
fn assert_reconciles(stats: &StatsSnapshot) {
    assert_eq!(
        stats.admitted,
        stats.requests + stats.shed + stats.deadline_expired + stats.internal_errors,
        "admitted != answered + shed + expired + internal: {stats:?}"
    );
}

fn wire(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

fn send_line(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).expect("reading response");
    response
}

fn query_line(query: &[Point], extra: &str) -> String {
    let points: Vec<String> = query.iter().map(|p| format!("[{},{}]", p.x, p.y)).collect();
    format!(
        "{{\"query\":[{}],\"algo\":\"exact\",\"measure\":\"dtw\",\"k\":2{extra}}}",
        points.join(",")
    )
}

/// A scan panic fails exactly the requests in that dispatch, as a
/// structured `Internal` error carrying the panic message — the worker
/// survives (no restart) and keeps answering everything else.
#[test]
fn scan_panics_are_isolated_to_their_requests() {
    quiet_injected_panics();
    let db = shared_db(16);
    let engine = QueryEngine::start(
        snapshot_for(&db),
        EngineConfig {
            workers: 1,
            max_batch: 1,
            cache_capacity: 0,
            // Deterministic: every 2nd scan dispatch panics.
            faults: Some("panic_in_scan=n:2".into()),
            ..EngineConfig::default()
        },
    );
    for (i, q) in queries_from(&db, 8).into_iter().enumerate() {
        // Sequential + max_batch 1 + no cache: query i is scan i+1, so
        // odd indices (scans 2, 4, ...) are exactly the injected ones.
        match engine.query(request(q, 2)) {
            Ok(_) if i % 2 == 0 => {}
            Err(ServiceError::Internal(msg)) if i % 2 == 1 => {
                assert!(msg.contains("injected fault"), "unexpected detail: {msg}");
            }
            other => panic!("query {i}: unexpected outcome {other:?}"),
        }
    }
    // The worker caught every panic in place: no deaths, no respawns.
    let stats = engine.stats();
    assert_eq!(stats.worker_panics, 4);
    assert_eq!(stats.worker_restarts, 0);
    assert_eq!(stats.internal_errors, 4);
    assert_reconciles(&stats);
    let report = engine.shutdown();
    assert!(
        report.clean(),
        "healthy shutdown after caught panics: {report:?}"
    );
}

/// Under a cocktail of panics, stalls, and dropped responses, every
/// answer that does come back is byte-identical to the fault-free
/// baseline — faults degrade availability, never correctness.
#[test]
fn chaos_answers_match_the_fault_free_baseline() {
    quiet_injected_panics();
    let db = shared_db(24);
    let baseline = QueryEngine::start(
        snapshot_for(&db),
        EngineConfig {
            workers: 2,
            faults: Some(String::new()), // forced disarmed
            ..EngineConfig::default()
        },
    );
    let chaos = QueryEngine::start(
        snapshot_for(&db),
        EngineConfig {
            workers: 2,
            max_batch: 4,
            faults: Some(
                "panic_in_scan=p:0.3,slow_scan=p:0.4:2,drop_response=p:0.2,cache_lock_stall=p:0.2:1"
                    .into(),
            ),
            ..EngineConfig::default()
        },
    );
    for (i, q) in queries_from(&db, 12).into_iter().enumerate() {
        let expect = baseline.query(request(q.clone(), 3)).expect("baseline");
        let mut got = None;
        for _attempt in 0..40 {
            match chaos.query(request(q.clone(), 3)) {
                Ok(r) => {
                    got = Some(r);
                    break;
                }
                // The retryable bulkhead errors; anything else is a bug.
                Err(ServiceError::Internal(_) | ServiceError::Canceled) => continue,
                Err(other) => panic!("query {i}: unexpected error {other:?}"),
            }
        }
        let got = got.expect("chaos engine failed 40 straight attempts");
        assert_eq!(
            *got.results, *expect.results,
            "query {i}: fault injection changed an answer"
        );
    }
    assert!(
        chaos.metrics_exposition().contains("simsub_faults_armed 1"),
        "chaos engine must report armed faults"
    );
    assert_reconciles(&chaos.stats());
}

/// Wire-level chaos: concurrent clients mixing queries, admin commands,
/// and garbage against a fault-injected server each get exactly one
/// well-formed JSON response per line — no hangs, no dropped
/// connections — and the stats reconcile afterwards.
#[test]
fn every_connection_survives_wire_chaos() {
    quiet_injected_panics();
    let db = shared_db(16);
    let engine = Arc::new(QueryEngine::start(
        snapshot_for(&db),
        EngineConfig {
            workers: 2,
            max_batch: 2,
            faults: Some("panic_in_scan=p:0.25,slow_scan=p:0.5:2,drop_response=p:0.2".into()),
            ..EngineConfig::default()
        },
    ));
    let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let queries = queries_from(&db, 8);
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let queries = queries.clone();
            std::thread::spawn(move || {
                let (mut stream, mut reader) = wire(addr);
                for i in 0..15 {
                    let line = match i % 5 {
                        0 => "{\"cmd\":\"ping\"}".to_string(),
                        1 => "{\"cmd\":\"stats\"}".to_string(),
                        2 => "definitely not json".to_string(),
                        3 => query_line(&queries[(c * 3 + i) % queries.len()], ""),
                        _ => query_line(&queries[(c + i) % queries.len()], ",\"v\":2,\"id\":7"),
                    };
                    let response = send_line(&mut stream, &mut reader, &line);
                    let parsed = Json::parse(response.trim())
                        .unwrap_or_else(|e| panic!("client {c} line {i}: bad response {e}"));
                    assert!(
                        parsed.get("ok").and_then(Json::as_bool).is_some(),
                        "client {c} line {i}: response without ok: {response}"
                    );
                    if let Some(err) = parsed.get("error").and_then(Json::as_str) {
                        // Structured internal errors must carry their detail.
                        if err == "internal" {
                            assert!(parsed.get("detail").is_some(), "internal without detail");
                        }
                    }
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }
    assert_reconciles(&engine.stats());
    drop(server);
}

/// The admission gate sheds bursts past `max_queue_depth` with a
/// structured `Overloaded` error and a positive back-off hint, while
/// everything admitted is still answered; the books balance afterwards.
#[test]
fn overload_sheds_instead_of_queueing_unboundedly() {
    let db = shared_db(12);
    let engine = QueryEngine::start(
        snapshot_for(&db),
        EngineConfig {
            workers: 1,
            max_batch: 1,
            cache_capacity: 0,
            max_queue_depth: 4,
            // Every scan sleeps 15ms, so a burst of 32 instant
            // submissions must pile past the 4-deep gate.
            faults: Some("slow_scan=n:1:15".into()),
            ..EngineConfig::default()
        },
    );
    let queries = queries_from(&db, 6);
    let mut pending = Vec::new();
    let mut shed = 0u64;
    for i in 0..32 {
        match engine.submit(request(queries[i % queries.len()].clone(), 2)) {
            Ok(p) => pending.push(p),
            Err(ServiceError::Overloaded { retry_after_ms }) => {
                assert!(retry_after_ms >= 1, "hint must be positive");
                shed += 1;
            }
            Err(other) => panic!("submission {i}: unexpected error {other:?}"),
        }
    }
    assert!(shed > 0, "a 32-burst against a 4-deep queue must shed");
    for p in pending {
        p.wait().expect("admitted requests still get answers");
    }
    let stats = engine.stats();
    assert_eq!(stats.shed, shed);
    assert_reconciles(&stats);
}

/// Work whose deadline expires while queued is dropped — answered with
/// `DeadlineExceeded`, never scanned — and the engine keeps serving
/// deadline-free requests as usual.
#[test]
fn expired_deadlines_drop_queued_work() {
    let db = shared_db(12);
    let engine = QueryEngine::start(
        snapshot_for(&db),
        EngineConfig {
            workers: 1,
            max_batch: 1,
            cache_capacity: 0,
            faults: Some("slow_scan=n:1:30".into()),
            ..EngineConfig::default()
        },
    );
    let queries = queries_from(&db, 5);
    // Occupy the single worker (30ms scan), then queue three requests
    // whose 1ms deadlines will be long gone by the time it frees up.
    let occupier = engine.submit(request(queries[0].clone(), 2)).unwrap();
    std::thread::sleep(Duration::from_millis(10));
    let doomed: Vec<_> = (1..4)
        .map(|i| {
            engine
                .submit_with_deadline(
                    request(queries[i].clone(), 2),
                    false,
                    Some(Duration::from_millis(1)),
                )
                .unwrap()
        })
        .collect();
    occupier.wait().expect("deadline-free request");
    for p in doomed {
        assert_eq!(p.wait().unwrap_err(), ServiceError::DeadlineExceeded);
    }
    let scans_before_extra = engine.stats().deadline_expired;
    assert_eq!(scans_before_extra, 3);
    // The engine is not wedged: a fresh deadline-free request works.
    engine
        .query(request(queries[4].clone(), 2))
        .expect("post-deadline query");
    assert_reconciles(&engine.stats());
}

/// A worker thread that dies outright (panic outside the scan guard) is
/// detected and respawned by the supervisor; queued work is never lost
/// and every request still gets its answer.
#[test]
fn supervisor_respawns_dead_workers() {
    quiet_injected_panics();
    let db = shared_db(12);
    let engine = QueryEngine::start(
        snapshot_for(&db),
        EngineConfig {
            workers: 2,
            max_batch: 1,
            cache_capacity: 0,
            // Every 3rd pass through a worker's loop top kills the
            // thread (before it picks up a job, so nothing is lost).
            faults: Some("panic_in_worker=n:3".into()),
            ..EngineConfig::default()
        },
    );
    for q in queries_from(&db, 10) {
        engine
            .query(request(q, 2))
            .expect("answered despite worker deaths");
    }
    let stats = engine.stats();
    assert!(
        stats.worker_panics >= 1,
        "no worker death recorded: {stats:?}"
    );
    assert!(stats.worker_restarts >= 1, "no respawn recorded: {stats:?}");
    assert_reconciles(&stats);
}

/// Shutdown collects thread panics into a report instead of propagating
/// mid-drain: a healthy engine reports clean, a dying one reports the
/// injected messages — and neither hangs.
#[test]
fn shutdown_collects_panics_into_a_report() {
    quiet_injected_panics();
    let db = shared_db(8);
    let healthy = QueryEngine::start(
        snapshot_for(&db),
        EngineConfig {
            workers: 2,
            faults: Some(String::new()),
            ..EngineConfig::default()
        },
    );
    healthy
        .query(request(queries_from(&db, 1).remove(0), 2))
        .unwrap();
    assert!(healthy.shutdown().clean());

    let dying = QueryEngine::start(
        snapshot_for(&db),
        EngineConfig {
            workers: 2,
            // Workers die at every loop top; the supervisor respawns
            // them into the same fate. Submit nothing — the point is
            // that teardown still terminates and accounts for them.
            faults: Some("panic_in_worker=n:1".into()),
            ..EngineConfig::default()
        },
    );
    std::thread::sleep(Duration::from_millis(60));
    let panics_seen = dying.stats().worker_panics;
    let report = dying.shutdown();
    for msg in &report.worker_panics {
        assert!(
            msg.contains("injected fault"),
            "foreign panic in report: {msg}"
        );
    }
    assert!(
        panics_seen + report.worker_panics.len() as u64 >= 1,
        "no worker death observed anywhere"
    );
}

/// Scan panics surface on the wire as the structured `internal` error,
/// and the fault registry is live-tunable over the wire: disarming via
/// `configure` restores normal service on the same connection.
#[test]
fn wire_internal_errors_and_live_fault_control() {
    quiet_injected_panics();
    let db = shared_db(12);
    let engine = Arc::new(QueryEngine::start(
        snapshot_for(&db),
        EngineConfig {
            workers: 1,
            max_batch: 1,
            cache_capacity: 0,
            faults: Some("panic_in_scan=n:1".into()),
            ..EngineConfig::default()
        },
    ));
    let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0").expect("bind");
    let (mut stream, mut reader) = wire(server.local_addr());
    let queries = queries_from(&db, 2);

    let response = send_line(&mut stream, &mut reader, &query_line(&queries[0], ""));
    let parsed = Json::parse(response.trim()).unwrap();
    assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(parsed.get("error").and_then(Json::as_str), Some("internal"));
    assert!(
        parsed
            .get("detail")
            .and_then(Json::as_str)
            .is_some_and(|d| d.contains("injected fault")),
        "detail must carry the panic message: {response}"
    );

    // Bad specs are rejected atomically (nothing partially armed)...
    let response = send_line(
        &mut stream,
        &mut reader,
        "{\"cmd\":\"configure\",\"faults\":\"bogus=p:2\"}",
    );
    assert_eq!(
        Json::parse(response.trim())
            .unwrap()
            .get("ok")
            .and_then(Json::as_bool),
        Some(false)
    );
    // ...and "" disarms live: the same connection starts getting answers.
    let response = send_line(
        &mut stream,
        &mut reader,
        "{\"cmd\":\"configure\",\"faults\":\"\"}",
    );
    let parsed = Json::parse(response.trim()).unwrap();
    assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(parsed.get("faults").and_then(Json::as_str), Some(""));
    let response = send_line(&mut stream, &mut reader, &query_line(&queries[1], ""));
    let parsed = Json::parse(response.trim()).unwrap();
    assert_eq!(
        parsed.get("ok").and_then(Json::as_bool),
        Some(true),
        "disarming must restore service: {response}"
    );
    drop(server);
}

/// `deadline_ms` is a v2-only wire field: valid on v2, validated on v2,
/// and ignored on v1 exactly like `"trace"` — v1 semantics never change.
#[test]
fn wire_deadlines_are_v2_only() {
    let db = shared_db(12);
    let engine = Arc::new(QueryEngine::start(
        snapshot_for(&db),
        EngineConfig {
            workers: 1,
            faults: Some(String::new()),
            ..EngineConfig::default()
        },
    ));
    let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0").expect("bind");
    let (mut stream, mut reader) = wire(server.local_addr());
    let q = queries_from(&db, 1).remove(0);

    for (extra, ok, why) in [
        (
            ",\"v\":2,\"deadline_ms\":60000",
            true,
            "generous v2 deadline",
        ),
        (",\"v\":2,\"deadline_ms\":0", false, "zero is not positive"),
        (",\"v\":2,\"deadline_ms\":-5", false, "negative rejected"),
        (
            ",\"v\":2,\"deadline_ms\":\"soon\"",
            false,
            "string rejected",
        ),
        (",\"deadline_ms\":0", true, "ignored on v1"),
    ] {
        let response = send_line(&mut stream, &mut reader, &query_line(&q, extra));
        let parsed = Json::parse(response.trim()).unwrap();
        assert_eq!(
            parsed.get("ok").and_then(Json::as_bool),
            Some(ok),
            "{why}: {response}"
        );
        if !ok {
            assert!(
                parsed
                    .get("error")
                    .and_then(Json::as_str)
                    .is_some_and(|e| e.contains("deadline_ms")),
                "{why}: error must name the field: {response}"
            );
        }
    }
    drop(server);
}

/// An oversized request line is answered with the structured
/// `request_too_large` error and *discarded*; the same connection keeps
/// serving — as does a line that is not valid UTF-8.
#[test]
fn oversized_and_non_utf8_lines_keep_the_connection_alive() {
    let db = shared_db(8);
    let engine = Arc::new(QueryEngine::start(
        snapshot_for(&db),
        EngineConfig {
            workers: 1,
            faults: Some(String::new()),
            ..EngineConfig::default()
        },
    ));
    let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0").expect("bind");
    let (mut stream, mut reader) = wire(server.local_addr());

    // 5 MiB of junk on one line: over the 4 MiB cap.
    stream.write_all(&vec![b'a'; 5 << 20]).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    let parsed = Json::parse(response.trim()).unwrap();
    assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        parsed.get("error").and_then(Json::as_str),
        Some("request_too_large")
    );
    assert_eq!(
        parsed.get("limit_bytes").and_then(Json::as_usize),
        Some(4 << 20)
    );

    // The connection is still usable...
    let response = send_line(&mut stream, &mut reader, "{\"cmd\":\"ping\"}");
    assert!(response.contains("\"pong\":true"), "{response}");

    // ...including after a line of invalid UTF-8.
    stream.write_all(&[0xff, 0xfe, 0x01, b'\n']).unwrap();
    stream.flush().unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    let parsed = Json::parse(response.trim()).unwrap();
    assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(false));
    assert!(
        parsed
            .get("error")
            .and_then(Json::as_str)
            .is_some_and(|e| e.contains("UTF-8")),
        "{response}"
    );
    let response = send_line(&mut stream, &mut reader, "{\"cmd\":\"ping\"}");
    assert!(response.contains("\"pong\":true"), "{response}");
    drop(server);
}

/// One long-lived server shared by every fuzz case below (leaked on
/// purpose: the test process ends anyway, and per-case servers would
/// dominate runtime).
fn fuzz_server_addr() -> std::net::SocketAddr {
    static ADDR: OnceLock<std::net::SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let db = shared_db(8);
        let engine = Arc::new(QueryEngine::start(
            snapshot_for(&db),
            EngineConfig {
                workers: 2,
                faults: Some(String::new()),
                ..EngineConfig::default()
            },
        ));
        let server = Server::bind(engine, "127.0.0.1:0").expect("bind fuzz server");
        let addr = server.local_addr();
        std::mem::forget(server);
        addr
    })
}

/// Sends one hostile line and asserts the invariant every request-shaped
/// input must satisfy: exactly one well-formed JSON response with an
/// `ok` field, and the server is still alive to produce it.
fn fuzz_line(payload: &[u8]) {
    let mut line: Vec<u8> = payload
        .iter()
        .copied()
        .filter(|&b| b != b'\n' && b != b'\r')
        .collect();
    if line.iter().all(u8::is_ascii_whitespace) {
        // Blank lines are legitimately ignored (no response); keep every
        // fuzz case on the one-response path.
        line.push(b'x');
    }
    let stream = TcpStream::connect(fuzz_server_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone");
    writer.write_all(&line).unwrap();
    writer.write_all(b"\n").unwrap();
    writer.flush().unwrap();
    let mut response = String::new();
    BufReader::new(stream)
        .read_line(&mut response)
        .expect("server must answer (a hang or crash fails here)");
    assert!(!response.trim().is_empty(), "connection closed unanswered");
    let parsed = Json::parse(response.trim())
        .unwrap_or_else(|e| panic!("malformed response to {line:?}: {e}"));
    assert!(
        parsed.get("ok").and_then(Json::as_bool).is_some(),
        "response without ok: {response}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary bytes on the wire — control characters, truncated
    /// multi-byte sequences, whatever — get a clean error, never a dead
    /// server or a hung connection.
    #[test]
    fn arbitrary_bytes_never_kill_the_server(
        payload in proptest::collection::vec(0u8..=255u8, 0..160)
    ) {
        fuzz_line(&payload);
    }

    /// Structurally hostile JSON: nesting far past the parser's depth
    /// cap (a stack overflow would abort the whole process), truncations
    /// of a valid query at every prefix, and numerics that overflow
    /// f64 / usize.
    #[test]
    fn hostile_json_shapes_get_clean_errors(
        depth in 129usize..6000,
        cut in 0usize..68,
        digits in 1usize..400
    ) {
        fuzz_line("[".repeat(depth).as_bytes());
        fuzz_line(format!("{}0{}", "[".repeat(depth), "]".repeat(depth)).as_bytes());
        let full = r#"{"query":[[1.0,2.0],[3.5,4.5]],"algo":"exact","measure":"dtw","k":2}"#;
        fuzz_line(&full.as_bytes()[..cut.min(full.len())]);
        fuzz_line(format!("{{\"query\":[[1,2]],\"k\":{}}}", "9".repeat(digits)).as_bytes());
        fuzz_line(b"{\"query\":[[1e999,2]],\"k\":1}");
    }
}
