//! Integration tests for the observability layer: mergeable histogram
//! primitives under real concurrency, the Prometheus-style metrics
//! exposition over the wire, stage tracing as a wire-v2 opt-in, the
//! slow-query log, and the sampled online quality auditor's AR contract.
//!
//! Like `service_engine.rs`, the whole file runs under the CI env matrix
//! (`SIMSUB_SHARDS=4`, `SIMSUB_NO_PRUNE=1`), so nothing here may assume
//! pruning happened or a particular corpus layout.

use simsub::data::{generate, DatasetSpec};
use simsub::index::{PartitionerKind, ShardedDb, TrajectoryDb};
use simsub::service::{
    AlgoSpec, ConfigUpdate, CorpusSnapshot, EngineConfig, Histogram, MeasureSpec, QueryEngine,
    QueryRequest, Server,
};
use simsub::trajectory::Point;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn shared_db(count: usize) -> Arc<TrajectoryDb> {
    TrajectoryDb::build(generate(&DatasetSpec::porto(), count, 42)).into_shared()
}

/// Mirrors `service_engine.rs`: sharded snapshot when `SIMSUB_SHARDS=N`
/// is set, so the CI matrix exercises the metrics pipeline both ways.
fn snapshot_for(db: &Arc<TrajectoryDb>) -> CorpusSnapshot {
    match std::env::var("SIMSUB_SHARDS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => CorpusSnapshot::sharded(
            ShardedDb::build(db.to_trajectories(), n, PartitionerKind::Hash).into_shared(),
        ),
        _ => CorpusSnapshot::new(Arc::clone(db)),
    }
}

fn request(query: Vec<Point>, algo: AlgoSpec, k: usize) -> QueryRequest {
    QueryRequest {
        query,
        algo,
        measure: MeasureSpec::Dtw,
        k,
        use_index: true,
    }
}

/// Query slices cut from corpus trajectories (index pruning always has
/// intersecting candidates).
fn queries_from(db: &TrajectoryDb, n: usize) -> Vec<Vec<Point>> {
    (0..n)
        .map(|i| {
            let t = db.view(i % db.len());
            let len = (6 + i % 5).min(t.len());
            t.to_points()[..len].to_vec()
        })
        .collect()
}

fn wire(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

fn send_line(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    response
}

fn query_line(query: &[Point], extra: &str) -> String {
    let points: Vec<String> = query.iter().map(|p| format!("[{},{}]", p.x, p.y)).collect();
    format!(
        "{{\"query\":[{}],\"algo\":\"exact\",\"measure\":\"dtw\",\"k\":2{extra}}}",
        points.join(",")
    )
}

/// Concurrent recording into one shared histogram loses no samples and
/// keeps quantiles within one power-of-two bucket of the truth.
#[test]
fn histogram_concurrent_recording_is_lossless() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 1_000;
    let hist = Arc::new(Histogram::new());
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let hist = Arc::clone(&hist);
            scope.spawn(move || {
                for v in 1..=PER_THREAD {
                    hist.record(v);
                }
            });
        }
    });
    let snap = hist.snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD);
    // Every thread recorded 1..=1000, so the true p50 is 500 and the true
    // p99 is 990. Power-of-two buckets report the bucket upper bound:
    // within [true, 2*true).
    let p50 = snap.quantile(0.5);
    assert!((500..1_000).contains(&p50), "p50 bucket bound: {p50}");
    let p99 = snap.quantile(0.99);
    assert!((990..1_980).contains(&p99), "p99 bucket bound: {p99}");
    assert_eq!(hist.sum(), THREADS * PER_THREAD * (PER_THREAD + 1) / 2);
}

/// Cross-worker merge is bucket-wise addition: merging in any grouping
/// yields identical buckets, counts, and quantiles (associativity is
/// what lets per-worker histograms fold into one scrape).
#[test]
fn histogram_merge_is_associative_and_exact() {
    let parts: Vec<Histogram> = (0..3)
        .map(|p| {
            let h = Histogram::new();
            for v in 0..200u64 {
                h.record(v * (p + 1));
            }
            h
        })
        .collect();

    // ((a + b) + c) vs (a + (b + c)), both against a flat re-recording.
    let left = Histogram::new();
    left.merge_from(&parts[0]);
    left.merge_from(&parts[1]);
    left.merge_from(&parts[2]);
    let right = Histogram::new();
    let bc = Histogram::new();
    bc.merge_from(&parts[1]);
    bc.merge_from(&parts[2]);
    right.merge_from(&parts[0]);
    right.merge_from(&bc);
    let flat = Histogram::new();
    for (p, part) in parts.iter().enumerate() {
        let _ = part;
        for v in 0..200u64 {
            flat.record(v * (p as u64 + 1));
        }
    }

    let (l, r, f) = (left.snapshot(), right.snapshot(), flat.snapshot());
    assert_eq!(l.count, 600);
    assert_eq!(l.nonzero_buckets(), r.nonzero_buckets());
    assert_eq!(l.nonzero_buckets(), f.nonzero_buckets());
    assert_eq!(l.sum, f.sum);
    for q in [0.5, 0.9, 0.99, 0.999] {
        assert_eq!(l.quantile(q), f.quantile(q), "quantile {q} diverged");
    }
}

/// `{"cmd":"metrics"}` returns the full Prometheus-style exposition with
/// every documented series present, and the counters in it reflect the
/// traffic just served.
#[test]
fn metrics_exposition_over_the_wire() {
    let db = shared_db(16);
    let engine = Arc::new(QueryEngine::start(
        snapshot_for(&db),
        EngineConfig {
            workers: 2,
            cache_capacity: 64,
            ..EngineConfig::default()
        },
    ));
    let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0").expect("bind");
    let (mut stream, mut reader) = wire(server.local_addr());
    let mut send = |line: &str| send_line(&mut stream, &mut reader, line);

    let queries = queries_from(&db, 3);
    for q in &queries {
        assert!(send(&query_line(q, "")).contains("\"ok\":true"));
    }
    // One repeat for a cache hit.
    assert!(send(&query_line(&queries[0], "")).contains("\"cached\":true"));

    let response = send("{\"cmd\":\"metrics\",\"v\":2}");
    assert!(response.contains("\"ok\":true"), "metrics: {response}");
    for series in [
        "simsub_requests_total",
        "simsub_cache_hits_total",
        "simsub_cache_evictions_total",
        "simsub_cache_evicted_on_swap_total",
        "simsub_cache_entries",
        "simsub_cache_capacity",
        "simsub_queue_depth",
        "simsub_inflight",
        "simsub_request_latency_us",
        "simsub_batch_size",
        "simsub_worker_busy_ns_total",
        "simsub_scan_candidates_total",
        "simsub_scan_pruned_kim_total",
        "simsub_scan_pruned_mbr_total",
        "simsub_scan_searched_total",
        "simsub_scan_searched_cells_total",
        "simsub_scan_ns_total",
        "simsub_ns_per_cell",
        "simsub_swaps_total",
        "simsub_epoch",
        "simsub_slow_queries_total",
        "simsub_audit_samples_total",
        "simsub_audit_dropped_total",
        "simsub_audit_ar",
        "simsub_audit_mr",
        "simsub_audit_rr",
    ] {
        assert!(
            response.contains(series),
            "exposition missing {series}: {response}"
        );
    }
    // The exposition travels as one JSON string; the escaped newlines and
    // HELP/TYPE comments prove it's the text format, not a JSON mirror.
    assert!(response.contains("# HELP") && response.contains("# TYPE"));
    assert!(
        response.contains("simsub_requests_total 4"),
        "served 4 requests, exposition disagrees: {response}"
    );
    assert!(
        response.contains("simsub_cache_hits_total 1"),
        "served 1 hit, exposition disagrees: {response}"
    );
    // Histograms expose cumulative buckets plus sum/count.
    assert!(
        response.contains("simsub_request_latency_us_bucket")
            && response.contains("le=\\\"+Inf\\\"")
            && response.contains("simsub_request_latency_us_count 4"),
        "latency histogram malformed: {response}"
    );

    let bye = send("{\"cmd\":\"shutdown\"}");
    assert!(bye.contains("\"bye\":true"));
    server.wait();
}

/// `"trace":true` on a wire-v2 request echoes the per-stage breakdown;
/// cache hits trace as cached with zero scan work; v1 and untraced v2
/// responses never carry it (asserted in `service_engine.rs`).
#[test]
fn trace_is_a_wire_v2_opt_in_with_stage_breakdown() {
    let db = shared_db(16);
    let engine = Arc::new(QueryEngine::start(
        snapshot_for(&db),
        EngineConfig {
            workers: 1,
            cache_capacity: 64,
            ..EngineConfig::default()
        },
    ));
    let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0").expect("bind");
    let (mut stream, mut reader) = wire(server.local_addr());
    let mut send = |line: &str| send_line(&mut stream, &mut reader, line);

    let query = queries_from(&db, 1).remove(0);
    let cold = send(&query_line(&query, ",\"v\":2,\"trace\":true"));
    assert!(cold.contains("\"ok\":true"), "cold: {cold}");
    assert!(cold.contains("\"trace\":{"), "no trace object: {cold}");
    for stage in [
        "admit_us",
        "queue_us",
        "batch_us",
        "scan_us",
        "bound_us",
        "kernel_us",
        "merge_us",
        "serialize_us",
        "scanned",
        "searched_cells",
        "batch_size",
    ] {
        assert!(
            cold.contains(&format!("\"{stage}\":")),
            "trace missing {stage}: {cold}"
        );
    }
    assert!(cold.contains("\"cached\":false"), "cold trace: {cold}");
    // The cold scan did real work: at least one index-surviving candidate
    // was considered (the r-tree prefilter may retire the rest).
    let scanned: f64 = cold
        .split("\"scanned\":")
        .nth(1)
        .and_then(|rest| rest.split([',', '}']).next())
        .and_then(|num| num.parse().ok())
        .expect("scanned counter in trace");
    assert!(scanned >= 1.0, "cold scan counters: {cold}");

    // A cached replay still traces — with `cached:true` and no scan work.
    let warm = send(&query_line(&query, ",\"v\":2,\"trace\":true"));
    assert!(
        warm.contains("\"trace\":{") && warm.contains("\"cached\":true"),
        "warm trace: {warm}"
    );
    assert!(warm.contains("\"scanned\":0"), "warm scan work: {warm}");

    server.stop();
    drop(stream);
    server.wait();
}

/// Lowering the slow-query threshold to 1µs turns every request into an
/// outlier: the ring log captures latency + full stage trace + epoch, and
/// the counter lands in both stats and the exposition.
#[test]
fn slow_query_log_captures_outliers() {
    let db = shared_db(12);
    let engine = QueryEngine::start(
        snapshot_for(&db),
        EngineConfig {
            workers: 1,
            cache_capacity: 0,
            slow_query_us: 1,
            ..EngineConfig::default()
        },
    );
    for q in queries_from(&db, 4) {
        engine.query(request(q, AlgoSpec::Exact, 2)).expect("query");
    }
    let slow = engine.slow_queries();
    assert_eq!(slow.len(), 4, "every query crosses a 1µs threshold");
    for record in &slow {
        assert!(record.latency_us >= 1);
        assert_eq!(record.epoch, 1);
        assert!(!record.trace.cached);
        assert!(record.trace.prune.scanned > 0);
        let line = record.to_json().dump();
        assert!(
            line.contains("\"slow_query\":true") && line.contains("\"scan_us\":"),
            "log line: {line}"
        );
    }
    assert_eq!(engine.stats().slow_queries, 4);

    // Raising the threshold back live stops the logging.
    engine
        .configure(ConfigUpdate {
            slow_query_us: Some(u64::MAX),
            ..ConfigUpdate::default()
        })
        .expect("configure");
    for q in queries_from(&db, 2) {
        engine.query(request(q, AlgoSpec::Pss, 2)).expect("query");
    }
    assert_eq!(engine.stats().slow_queries, 4, "threshold raise ignored");
    engine.shutdown();
}

/// The acceptance check for live quality auditing: with `audit_sample=1`
/// every cold answer is re-ranked exhaustively in the background, and the
/// AR gauge lands at ≥ 1.0 (= the paper's approximation-ratio floor; PSS
/// can only match or exceed the exact optimum it's measured against).
#[test]
fn auditor_reports_ar_at_least_one_for_live_pss() {
    let db = shared_db(16);
    let engine = QueryEngine::start(
        snapshot_for(&db),
        EngineConfig {
            workers: 2,
            cache_capacity: 0, // every answer is cold, hence auditable
            audit_sample: 1.0,
            ..EngineConfig::default()
        },
    );
    let queries = queries_from(&db, 6);
    for q in &queries {
        engine
            .query(request(q.clone(), AlgoSpec::Pss, 3))
            .expect("query");
    }

    // The auditor is asynchronous; wait for every sample to be resolved
    // (folded in or counted dropped).
    let deadline = Instant::now() + Duration::from_secs(30);
    let stats = loop {
        let stats = engine.stats();
        if stats.audit_samples + stats.audit_dropped >= queries.len() as u64 {
            break stats;
        }
        assert!(
            Instant::now() < deadline,
            "auditor stalled: {} samples + {} dropped of {}",
            stats.audit_samples,
            stats.audit_dropped,
            queries.len()
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(
        stats.audit_samples >= 1,
        "nothing audited: {stats:?}-ish ({} dropped)",
        stats.audit_dropped
    );
    assert!(
        stats.audit_ar >= 1.0 - 1e-9,
        "AR below the approximation floor: {}",
        stats.audit_ar
    );
    assert!(stats.audit_mr >= 1.0 - 1e-9, "MR floor: {}", stats.audit_mr);
    assert!(
        stats.audit_rr > 0.0 && stats.audit_rr <= 1.0 + 1e-9,
        "RR out of range: {}",
        stats.audit_rr
    );
    engine.shutdown();
}
