//! Pipelining and response-ordering contract tests (the wire spec's
//! "Connection models & response ordering" section).
//!
//! One connection sends many queries before reading anything back. A
//! fault-injected `slow_scan` makes the head-of-line query the slow one
//! (the later queries were pre-warmed into the result cache, and cache
//! hits never reach the scan fault point), so head-of-line blocking is
//! observable: under the reactor, id-carrying responses may overtake it
//! (and the test demands they do); id-less responses must never
//! reorder; and under the threads model everything stays strictly
//! sequential.

use simsub::data::{generate, DatasetSpec};
use simsub::index::TrajectoryDb;
use simsub::service::{CorpusSnapshot, EngineConfig, IoModel, QueryEngine, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn shared_db(count: usize) -> Arc<TrajectoryDb> {
    TrajectoryDb::build(generate(&DatasetSpec::porto(), count, 42)).into_shared()
}

/// Two workers and a result cache, no faults armed yet: the fault is
/// armed over the wire *after* the fast queries are warmed, so only the
/// cold head-of-line query's scan sleeps.
fn engine_two_workers(db: &Arc<TrajectoryDb>) -> Arc<QueryEngine> {
    Arc::new(QueryEngine::start(
        CorpusSnapshot::new(Arc::clone(db)),
        EngineConfig {
            workers: 2,
            max_batch: 8,
            cache_capacity: 64,
            ..EngineConfig::default()
        },
    ))
}

fn query_json(db: &TrajectoryDb, i: usize, k: usize, id: Option<&str>) -> String {
    let t = db.view(i % db.len());
    let len = (6 + i % 5).min(t.len());
    let points: Vec<String> = t.to_points()[..len]
        .iter()
        .map(|p| format!("[{},{}]", p.x, p.y))
        .collect();
    let id_field = id.map(|id| format!("\"id\":\"{id}\",")).unwrap_or_default();
    format!(
        "{{{id_field}\"query\":[{}],\"algo\":\"exact\",\"measure\":\"dtw\",\"k\":{k}}}",
        points.join(",")
    )
}

/// Runs every line through a scratch connection to populate the result
/// cache, then arms `slow_scan` so the next *cold* scan sleeps
/// `slow_ms`. `n:1` fires on every scan occurrence, but the warmed
/// queries are cache hits from here on and never reach the fault point.
fn warm_then_arm(addr: std::net::SocketAddr, lines: &[String], slow_ms: u64) {
    let mut stream = TcpStream::connect(addr).expect("connect warm");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let arm = format!("{{\"cmd\":\"configure\",\"faults\":\"slow_scan=n:1:{slow_ms}\"}}");
    for line in lines.iter().chain(std::iter::once(&arm)) {
        stream.write_all(line.as_bytes()).expect("write warm");
        stream.write_all(b"\n").expect("write warm");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read warm");
        assert!(
            response.contains("\"ok\":true"),
            "warm-up request failed: {response}"
        );
    }
}

/// Sends `lines` down one connection without reading, then collects one
/// response line per request.
fn pipeline(addr: std::net::SocketAddr, head: &str, rest: &[String]) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(b"\n").expect("write head");
    stream.flush().expect("flush head");
    // Let the head query reach a worker (and start its slow scan)
    // before the rest of the pipeline lands.
    std::thread::sleep(Duration::from_millis(150));
    let mut burst = String::new();
    for line in rest {
        burst.push_str(line);
        burst.push('\n');
    }
    stream.write_all(burst.as_bytes()).expect("write burst");
    stream.flush().expect("flush burst");
    let mut responses = Vec::new();
    for _ in 0..=rest.len() {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response");
        assert!(!line.is_empty(), "connection closed early");
        responses.push(line);
    }
    responses
}

#[test]
fn reactor_answers_pipelined_ids_out_of_order() {
    let db = shared_db(20);
    let engine = engine_two_workers(&db);
    let server = Server::bind_with(Arc::clone(&engine), "127.0.0.1:0", IoModel::Reactor)
        .expect("bind reactor");
    assert_eq!(server.io_model(), IoModel::Reactor);

    let slow = query_json(&db, 0, 2, Some("slow"));
    let fast: Vec<String> = (0..4)
        .map(|i| query_json(&db, i + 1, 2, Some(&format!("fast-{i}"))))
        .collect();
    warm_then_arm(server.local_addr(), &fast, 600);
    let responses = pipeline(server.local_addr(), &slow, &fast);

    // Every request got exactly one answer, matched by id.
    assert!(responses.iter().all(|r| r.contains("\"ok\":true")));
    for i in 0..4 {
        let needle = format!("\"id\":\"fast-{i}\"");
        assert_eq!(
            responses.iter().filter(|r| r.contains(&needle)).count(),
            1,
            "{needle} not answered exactly once: {responses:?}"
        );
    }
    // The head-of-line query was slow; the reactor answered the other
    // four while it scanned, so it must come back LAST — out of
    // submission order.
    assert!(
        responses[4].contains("\"id\":\"slow\""),
        "slow head-of-line query did not finish last: {responses:?}"
    );

    server.stop();
    server.wait();
}

#[test]
fn threads_model_answers_strictly_in_order() {
    let db = shared_db(20);
    let engine = engine_two_workers(&db);
    let server = Server::bind_with(Arc::clone(&engine), "127.0.0.1:0", IoModel::Threads)
        .expect("bind threads");
    assert_eq!(server.io_model(), IoModel::Threads);

    let slow = query_json(&db, 0, 2, Some("slow"));
    let fast: Vec<String> = (0..3)
        .map(|i| query_json(&db, i + 1, 2, Some(&format!("fast-{i}"))))
        .collect();
    warm_then_arm(server.local_addr(), &fast, 300);
    let responses = pipeline(server.local_addr(), &slow, &fast);

    // The blocking loop handles one line at a time: submission order,
    // slow head first, despite the pipelined burst behind it.
    assert!(responses[0].contains("\"id\":\"slow\""), "{responses:?}");
    for i in 0..3 {
        assert!(
            responses[i + 1].contains(&format!("\"id\":\"fast-{i}\"")),
            "threads model reordered responses: {responses:?}"
        );
    }

    server.stop();
    server.wait();
}

#[test]
fn reactor_keeps_idless_responses_in_submission_order() {
    let db = shared_db(20);
    let engine = engine_two_workers(&db);
    let server = Server::bind_with(Arc::clone(&engine), "127.0.0.1:0", IoModel::Reactor)
        .expect("bind reactor");
    assert_eq!(server.io_model(), IoModel::Reactor);

    // No ids anywhere: the strict-order lane. Query i is a prefix of
    // trajectory i, so its top hit is trajectory i at distance 0 —
    // that's the fingerprint that tells the responses apart. The later
    // queries finish first (cache hits) but the reactor must hold them
    // until the slow head's response has been written.
    let slow = query_json(&db, 0, 2, None);
    let rest: Vec<String> = (0..3).map(|i| query_json(&db, i + 1, 2, None)).collect();
    warm_then_arm(server.local_addr(), &rest, 400);
    let responses = pipeline(server.local_addr(), &slow, &rest);

    assert!(responses.iter().all(|r| r.contains("\"ok\":true")));
    for (i, response) in responses.iter().enumerate() {
        let top = format!("\"results\":[{{\"trajectory_id\":{i},");
        assert!(
            response.contains(&top),
            "id-less response {i} out of order (expected top hit {i}): {responses:?}"
        );
    }

    server.stop();
    server.wait();
}
