//! Integration tests for the serving subsystem: concurrency, cache
//! behaviour, shutdown draining, wire-protocol round-trips against a
//! live TCP server, and — the control-plane contract — snapshot hot-swap
//! semantics (epoch pinning, cache purging, live reload over the wire,
//! v1/v2 coexistence).

use simsub::core::{ExactS, Pss, SubtrajSearch};
use simsub::data::{generate, write_csv_file, DatasetSpec};
use simsub::index::{PartitionerKind, ShardedDb, TrajectoryDb};
use simsub::measures::{Dtw, Frechet, Measure};
use simsub::service::{
    AlgoSpec, CorpusSnapshot, EngineConfig, MeasureSpec, QueryEngine, QueryRequest, Server,
    ServiceError,
};
use simsub::trajectory::Point;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn shared_db(count: usize) -> Arc<TrajectoryDb> {
    TrajectoryDb::build(generate(&DatasetSpec::porto(), count, 42)).into_shared()
}

/// Snapshot over `db`'s corpus, sharded when `SIMSUB_SHARDS=N` (N ≥ 1) is
/// set — the CI matrix runs this whole suite both ways, and every
/// expectation below compares against the *unsharded* `db.top_k`, so the
/// sharded engine is held to byte-identical answers.
fn snapshot_for(db: &Arc<TrajectoryDb>) -> CorpusSnapshot {
    match std::env::var("SIMSUB_SHARDS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => CorpusSnapshot::sharded(
            ShardedDb::build(db.to_trajectories(), n, PartitionerKind::Hash).into_shared(),
        ),
        _ => CorpusSnapshot::new(Arc::clone(db)),
    }
}

fn engine_with(db: &Arc<TrajectoryDb>, workers: usize) -> QueryEngine {
    QueryEngine::start(
        snapshot_for(db),
        EngineConfig {
            workers,
            max_batch: 8,
            cache_capacity: 256,
            ..EngineConfig::default()
        },
    )
}

fn request(query: Vec<Point>, algo: AlgoSpec, measure: MeasureSpec, k: usize) -> QueryRequest {
    QueryRequest {
        query,
        algo,
        measure,
        k,
        use_index: true,
    }
}

/// Query slices cut from corpus trajectories, so index pruning always has
/// intersecting candidates.
fn queries_from(db: &TrajectoryDb, n: usize) -> Vec<Vec<Point>> {
    (0..n)
        .map(|i| {
            let t = db.view(i % db.len());
            let len = (6 + i % 5).min(t.len());
            t.to_points()[..len].to_vec()
        })
        .collect()
}

#[test]
fn concurrent_queries_match_direct_search() {
    let db = shared_db(40);
    let engine = Arc::new(engine_with(&db, 4));
    let queries = queries_from(&db, 12);

    // Mix of algorithms and measures, fired concurrently from one thread
    // per request; every answer must equal the offline top_k.
    let cases: Vec<(
        QueryRequest,
        &'static dyn SubtrajSearch,
        &'static dyn Measure,
    )> = queries
        .iter()
        .enumerate()
        .map(
            |(i, q)| -> (QueryRequest, &dyn SubtrajSearch, &dyn Measure) {
                if i % 3 == 0 {
                    (
                        request(q.clone(), AlgoSpec::Exact, MeasureSpec::Dtw, 3),
                        &ExactS,
                        &Dtw,
                    )
                } else if i % 3 == 1 {
                    (
                        request(q.clone(), AlgoSpec::Pss, MeasureSpec::Dtw, 5),
                        &Pss,
                        &Dtw,
                    )
                } else {
                    (
                        request(q.clone(), AlgoSpec::Pss, MeasureSpec::Frechet, 2),
                        &Pss,
                        &Frechet,
                    )
                }
            },
        )
        .collect();

    let handles: Vec<_> = cases
        .iter()
        .map(|(req, _, _)| {
            let engine = Arc::clone(&engine);
            let req = req.clone();
            std::thread::spawn(move || engine.query(req).expect("query failed"))
        })
        .collect();

    for (handle, (req, algo, measure)) in handles.into_iter().zip(&cases) {
        let response = handle.join().expect("query thread panicked");
        let want = db.top_k(*algo, *measure, &req.query, req.k, req.use_index);
        assert_eq!(*response.results, want);
    }
    assert_eq!(engine.stats().requests, cases.len() as u64);
    engine.shutdown();
}

#[test]
fn duplicate_query_is_a_cache_hit() {
    let db = shared_db(25);
    let engine = engine_with(&db, 2);
    let query = queries_from(&db, 1).remove(0);
    let req = request(query.clone(), AlgoSpec::Exact, MeasureSpec::Dtw, 4);

    let first = engine.query(req.clone()).unwrap();
    assert!(!first.cached, "first sighting cannot be cached");
    let second = engine.query(req.clone()).unwrap();
    assert!(second.cached, "identical repeat must hit the cache");
    assert_eq!(*first.results, *second.results);
    assert_eq!(
        *second.results,
        db.top_k(&ExactS, &Dtw, &query, 4, true),
        "cached answer must still equal the direct search"
    );

    // Timestamps are not part of the canonical key...
    let mut shifted = req.clone();
    for p in &mut shifted.query {
        p.t += 1000.0;
    }
    assert!(engine.query(shifted).unwrap().cached);

    // ...but k, coordinates, and measure are.
    let mut different_k = req.clone();
    different_k.k = 5;
    assert!(!engine.query(different_k).unwrap().cached);
    let mut different_measure = req.clone();
    different_measure.measure = MeasureSpec::Frechet;
    assert!(!engine.query(different_measure).unwrap().cached);

    let stats = engine.stats();
    assert_eq!(stats.requests, 5);
    assert_eq!(stats.cache_hits, 2);
    engine.shutdown();
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let db = shared_db(30);
    let engine = engine_with(&db, 2);
    let queries = queries_from(&db, 20);

    // Enqueue a pile of distinct (uncacheable) requests, then shut down
    // immediately: every pending answer must still arrive.
    let pendings: Vec<_> = queries
        .iter()
        .map(|q| {
            engine
                .submit(request(q.clone(), AlgoSpec::Exact, MeasureSpec::Dtw, 2))
                .expect("submit before shutdown")
        })
        .collect();
    engine.shutdown();

    for (pending, q) in pendings.into_iter().zip(&queries) {
        let response = pending.wait().expect("drained request lost its answer");
        assert_eq!(*response.results, db.top_k(&ExactS, &Dtw, q, 2, true));
    }

    // After shutdown, new submissions are refused...
    let err = engine
        .submit(request(
            queries[0].clone(),
            AlgoSpec::Exact,
            MeasureSpec::Dtw,
            1,
        ))
        .unwrap_err();
    assert_eq!(err, ServiceError::ShuttingDown);
    // ...and shutdown stays idempotent.
    engine.shutdown();
}

#[test]
fn invalid_requests_fail_fast() {
    let db = shared_db(10);
    let engine = engine_with(&db, 1);
    let query = queries_from(&db, 1).remove(0);

    let empty = engine.submit(request(Vec::new(), AlgoSpec::Pss, MeasureSpec::Dtw, 1));
    assert!(matches!(empty, Err(ServiceError::InvalidRequest(_))));

    let zero_k = engine.submit(request(query.clone(), AlgoSpec::Pss, MeasureSpec::Dtw, 0));
    assert!(matches!(zero_k, Err(ServiceError::InvalidRequest(_))));

    // No policy/model loaded into this snapshot.
    let rls = engine.submit(request(query.clone(), AlgoSpec::Rls, MeasureSpec::Dtw, 1));
    assert!(matches!(rls, Err(ServiceError::InvalidRequest(_))));
    let t2vec = engine.submit(request(query, AlgoSpec::Pss, MeasureSpec::T2Vec, 1));
    assert!(matches!(t2vec, Err(ServiceError::InvalidRequest(_))));
    engine.shutdown();
}

#[test]
fn tcp_server_handles_slow_and_newline_less_clients() {
    let db = shared_db(15);
    let engine = Arc::new(engine_with(&db, 1));
    let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    // A request written in two chunks with a pause longer than the
    // server's 200ms read timeout: the prefix must not be discarded.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    stream
        .write_all(b"{\"query\":[[1,2],[2,3]],\"algo\":")
        .unwrap();
    stream.flush().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(600));
    stream.write_all(b"\"pss\",\"k\":1}\n").unwrap();
    stream.flush().unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    assert!(
        response.contains("\"ok\":true"),
        "chunked request mangled: {response}"
    );

    // A final request with no trailing newline before close still gets
    // an answer.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    stream
        .write_all(b"{\"query\":[[1,2]],\"algo\":\"exact\",\"k\":1}")
        .unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    assert!(
        response.contains("\"ok\":true"),
        "newline-less request dropped: {response}"
    );

    server.stop();
    server.wait();
}

#[test]
fn tcp_server_round_trip() {
    let db = shared_db(20);
    let engine = Arc::new(engine_with(&db, 2));
    let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let query = queries_from(&db, 1).remove(0);
    let points: Vec<String> = query.iter().map(|p| format!("[{},{}]", p.x, p.y)).collect();
    let request_line = format!(
        "{{\"query\":[{}],\"algo\":\"exact\",\"measure\":\"dtw\",\"k\":3}}",
        points.join(",")
    );

    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut send = |line: &str| -> String {
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        response
    };

    // Query answers match the direct search (compare ids and ranges
    // through the wire text).
    let response = send(&request_line);
    assert!(response.contains("\"ok\":true"), "response: {response}");
    let want = db.top_k(&ExactS, &Dtw, &query, 3, true);
    for hit in &want {
        assert!(
            response.contains(&format!("\"trajectory_id\":{}", hit.trajectory_id)),
            "missing hit {} in {response}",
            hit.trajectory_id
        );
    }

    // Repeat is served from cache.
    let repeat = send(&request_line);
    assert!(repeat.contains("\"cached\":true"), "repeat: {repeat}");

    // Malformed input errors without closing the connection.
    let garbage = send("{\"algo\":\"exact\"}");
    assert!(garbage.contains("\"ok\":false"), "garbage: {garbage}");

    // Stats are live.
    let stats = send("{\"cmd\":\"stats\"}");
    assert!(stats.contains("\"cache_hits\":1"), "stats: {stats}");

    // Graceful wire shutdown.
    let bye = send("{\"cmd\":\"shutdown\"}");
    assert!(bye.contains("\"bye\":true"), "bye: {bye}");
    server.wait();
}

/// A sharded engine is indistinguishable on the wire from the unsharded
/// one: the same JSON request lines produce byte-identical `results`
/// payloads through both TCP servers (only latency/batch metadata may
/// differ).
#[test]
fn sharded_engine_matches_unsharded_on_the_wire() {
    let db = shared_db(30);
    let corpus = db.to_trajectories();
    let single = Arc::new(QueryEngine::start(
        CorpusSnapshot::new(Arc::clone(&db)),
        EngineConfig {
            workers: 2,
            max_batch: 8,
            cache_capacity: 64,
            ..EngineConfig::default()
        },
    ));
    let mut engines = vec![("single", single)];
    for (name, kind) in [
        ("hash3", PartitionerKind::Hash),
        ("grid5", PartitionerKind::Grid),
    ] {
        let shards = if kind == PartitionerKind::Hash { 3 } else { 5 };
        let sharded = ShardedDb::build(corpus.clone(), shards, kind).into_shared();
        engines.push((
            name,
            Arc::new(QueryEngine::start(
                CorpusSnapshot::sharded(sharded),
                EngineConfig {
                    workers: 2,
                    max_batch: 8,
                    cache_capacity: 64,
                    ..EngineConfig::default()
                },
            )),
        ));
    }

    // Engine-level equality across a mixed workload first.
    for (i, q) in queries_from(&db, 9).into_iter().enumerate() {
        let (algo, measure): (AlgoSpec, MeasureSpec) = match i % 3 {
            0 => (AlgoSpec::Exact, MeasureSpec::Dtw),
            1 => (AlgoSpec::Pss, MeasureSpec::Dtw),
            _ => (AlgoSpec::Pss, MeasureSpec::Frechet),
        };
        let req = request(q, algo, measure, 3);
        let want = engines[0].1.query(req.clone()).unwrap();
        for (name, engine) in &engines[1..] {
            let got = engine.query(req.clone()).unwrap();
            assert_eq!(*got.results, *want.results, "layout {name}, query {i}");
        }
    }

    // Then the wire: identical request line, identical "results" text.
    let query = queries_from(&db, 1).remove(0);
    let points: Vec<String> = query.iter().map(|p| format!("[{},{}]", p.x, p.y)).collect();
    let line = format!(
        "{{\"query\":[{}],\"algo\":\"exact\",\"measure\":\"dtw\",\"k\":4}}",
        points.join(",")
    );
    let results_part = |response: &str| {
        let start = response.find("\"results\":").expect("results field");
        response[start..].trim_end().to_string()
    };
    let mut wire_answers = Vec::new();
    for (name, engine) in &engines {
        let server = Server::bind(Arc::clone(engine), "127.0.0.1:0").expect("bind");
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        assert!(response.contains("\"ok\":true"), "{name}: {response}");
        wire_answers.push((*name, results_part(&response)));
        server.stop();
        drop(stream);
        server.wait();
    }
    for (name, answer) in &wire_answers[1..] {
        assert_eq!(
            answer, &wire_answers[0].1,
            "wire answer of {name} differs from single"
        );
    }
}

/// Cache keys are layout-versioned: the same request keys differently
/// under different shard layouts (entries die with their layout, the
/// invariant snapshot hot-swap will rely on), and identically within one
/// layout exactly when the canonical query hash matches.
#[test]
fn cache_keys_include_shard_layout_version() {
    let db = shared_db(12);
    let corpus = db.to_trajectories();
    let req = request(
        queries_from(&db, 1).remove(0),
        AlgoSpec::Pss,
        MeasureSpec::Dtw,
        3,
    );

    let snap = |layout: Option<(usize, PartitionerKind)>| match layout {
        None => CorpusSnapshot::new(Arc::clone(&db)),
        Some((n, kind)) => {
            CorpusSnapshot::sharded(ShardedDb::build(corpus.clone(), n, kind).into_shared())
        }
    };
    let single = snap(None);
    let hash2 = snap(Some((2, PartitionerKind::Hash)));
    let hash4 = snap(Some((4, PartitionerKind::Hash)));
    let hash4_again = snap(Some((4, PartitionerKind::Hash)));
    let grid4 = snap(Some((4, PartitionerKind::Grid)));

    // Same layout: key survives rebuilds and equals across snapshots...
    assert_eq!(single.cache_key(&req), single.cache_key(&req.clone()));
    assert_eq!(hash4.cache_key(&req), hash4_again.cache_key(&req));
    // ...including for a canonically equal request (timestamps ignored).
    let mut shifted = req.clone();
    for p in &mut shifted.query {
        p.t += 500.0;
    }
    assert_eq!(hash4.cache_key(&req), hash4.cache_key(&shifted));

    // Different layouts: same request, different key — a shard count or
    // partitioner change invalidates every cached answer.
    let keys = [
        single.cache_key(&req),
        hash2.cache_key(&req),
        hash4.cache_key(&req),
        grid4.cache_key(&req),
    ];
    for i in 0..keys.len() {
        for j in i + 1..keys.len() {
            assert_ne!(keys[i], keys[j], "layouts {i} and {j} share a cache key");
        }
    }

    // Different canonical hash: different key even within one layout.
    let mut different = req.clone();
    different.k = 4;
    assert_ne!(hash4.cache_key(&req), hash4.cache_key(&different));
}

// ---------------------------------------------------------------------
// Control-plane: snapshot hot-swap + wire protocol v2
// ---------------------------------------------------------------------

fn wire(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    let reader = BufReader::new(stream.try_clone().expect("clone stream"));
    (stream, reader)
}

fn send_line(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    response
}

/// The serialized `"results"` array of a response line: the part that
/// must be byte-identical across engines answering the same request
/// (envelope fields like `epoch` legitimately differ).
fn results_part(response: &str) -> String {
    simsub::service::json::Json::parse(response.trim())
        .expect("valid response json")
        .get("results")
        .expect("results field")
        .dump()
}

/// Satellite regression: connections sitting silently in `read_line`
/// (idle, or stalled mid-request) must not stall `shutdown` — the read
/// timeout lets every connection thread observe the stop flag.
#[test]
fn idle_connections_do_not_stall_shutdown() {
    let db = shared_db(10);
    let engine = Arc::new(engine_with(&db, 1));
    let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    // One client that never speaks, one stuck mid-line without a newline.
    let idle = TcpStream::connect(addr).expect("connect");
    let mut midline = TcpStream::connect(addr).expect("connect");
    midline.write_all(b"{\"cmd\":\"st").unwrap();
    midline.flush().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(50));

    let (mut stream, mut reader) = wire(addr);
    let bye = send_line(&mut stream, &mut reader, "{\"cmd\":\"shutdown\"}");
    assert!(bye.contains("\"bye\":true"), "shutdown: {bye}");

    let start = std::time::Instant::now();
    server.wait();
    assert!(
        start.elapsed() < std::time::Duration::from_secs(3),
        "silent connections stalled shutdown for {:?}",
        start.elapsed()
    );
    drop(idle);
    drop(midline);
}

/// Swap semantics (a): requests admitted before a swap complete against
/// the epoch they were admitted under — even when the worker only gets
/// to them after the swap landed — and post-swap admissions see the new
/// snapshot immediately.
#[test]
fn preswap_admissions_answer_from_their_epoch() {
    let db_a = shared_db(40);
    let db_b = TrajectoryDb::build(generate(&DatasetSpec::porto(), 25, 777)).into_shared();
    let engine = QueryEngine::start(
        snapshot_for(&db_a),
        EngineConfig {
            workers: 1,
            max_batch: 4,
            cache_capacity: 64,
            ..EngineConfig::default()
        },
    );

    // Head-of-line blocker: an expensive unindexed exact scan keeps the
    // single worker busy while the rest of the queue is admitted and the
    // swap lands behind it.
    let blocker = engine
        .submit(QueryRequest {
            query: db_a.view(0).to_points(),
            algo: AlgoSpec::Exact,
            measure: MeasureSpec::Dtw,
            k: 1,
            use_index: false,
        })
        .unwrap();
    let queries = queries_from(&db_a, 6);
    let pendings: Vec<_> = queries
        .iter()
        .map(|q| {
            engine
                .submit(request(q.clone(), AlgoSpec::Exact, MeasureSpec::Dtw, 3))
                .unwrap()
        })
        .collect();

    let report = engine.swap_snapshot(snapshot_for(&db_b));
    assert_eq!((report.previous_epoch, report.epoch), (1, 2));
    assert_eq!(report.trajectories, 25);

    let blocked = blocker.wait().unwrap();
    assert_eq!(blocked.epoch, 1);
    for (pending, q) in pendings.into_iter().zip(&queries) {
        let response = pending.wait().unwrap();
        assert_eq!(response.epoch, 1, "pre-swap admission migrated epochs");
        assert_eq!(
            *response.results,
            db_a.top_k(&ExactS, &Dtw, q, 3, true),
            "pre-swap admission answered from the wrong corpus"
        );
    }

    // Swap semantics (b): post-swap answers are byte-identical to a cold
    // engine started directly on the new snapshot.
    let cold = QueryEngine::start(
        snapshot_for(&db_b),
        EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        },
    );
    for q in queries_from(&db_b, 4) {
        let req = request(q.clone(), AlgoSpec::Exact, MeasureSpec::Dtw, 3);
        let swapped = engine.query(req.clone()).unwrap();
        assert_eq!(swapped.epoch, 2);
        assert_eq!(*swapped.results, *cold.query(req).unwrap().results);
        assert_eq!(*swapped.results, db_b.top_k(&ExactS, &Dtw, &q, 3, true));
    }
    cold.shutdown();
    engine.shutdown();
}

/// Satellite: swaps are observable. Stale-epoch cache entries die with
/// the swap (counted in `cache_evicted_on_swap`), and the same request
/// is re-answered cold under the new epoch — even when the new corpus is
/// a rebuild of the identical trajectories.
#[test]
fn swap_purges_stale_cache_and_is_observable() {
    let db = shared_db(20);
    let engine = engine_with(&db, 2);
    let q = queries_from(&db, 1).remove(0);
    let req = request(q, AlgoSpec::Pss, MeasureSpec::Dtw, 4);
    assert!(!engine.query(req.clone()).unwrap().cached);
    assert!(engine.query(req.clone()).unwrap().cached);

    let rebuilt = TrajectoryDb::build(db.to_trajectories()).into_shared();
    let report = engine.swap_snapshot(snapshot_for(&rebuilt));
    assert!(report.cache_evicted >= 1, "swap purged nothing");
    let stats = engine.stats();
    assert_eq!(stats.swaps, 1);
    assert!(stats.cache_evicted_on_swap >= 1);

    let after = engine.query(req.clone()).unwrap();
    assert!(
        !after.cached,
        "stale-epoch cache entry replayed across a swap"
    );
    assert_eq!(after.epoch, 2);
    // Identical corpus ⇒ identical answer, recached under the new epoch.
    assert!(engine.query(req).unwrap().cached);
    engine.shutdown();
}

/// Wire protocol v2 envelope rules, and their v1 bit-compat flip side.
#[test]
fn wire_v2_envelope_and_version_errors() {
    let db = shared_db(12);
    let engine = Arc::new(engine_with(&db, 1));
    let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0").expect("bind");
    let (mut stream, mut reader) = wire(server.local_addr());
    let mut send = |line: &str| send_line(&mut stream, &mut reader, line);

    let query = "{\"query\":[[1,2],[2,3]],\"algo\":\"exact\",\"k\":1,\"index\":false";
    // v1 (no envelope fields, and explicit v:1): responses carry none.
    for line in [format!("{query}}}"), format!("{query},\"v\":1}}")] {
        let response = send(&line);
        assert!(response.contains("\"ok\":true"), "v1: {response}");
        assert!(
            !response.contains("\"epoch\"") && !response.contains("\"v\":"),
            "v1 response grew envelope fields: {response}"
        );
    }
    // v2 declared: v + epoch echoed; with an id, the id too.
    let response = send(&format!("{query},\"v\":2}}"));
    assert!(
        response.contains("\"v\":2") && response.contains("\"epoch\":1"),
        "v2: {response}"
    );
    let response = send(&format!("{query},\"v\":2,\"id\":\"req-7\"}}"));
    assert!(response.contains("\"id\":\"req-7\""), "id echo: {response}");
    // An id alone implies v2; numeric ids echo as numbers.
    let response = send(&format!("{query},\"id\":42}}"));
    assert!(
        response.contains("\"id\":42") && response.contains("\"v\":2"),
        "implied v2: {response}"
    );
    // Commands take the envelope too.
    let response = send("{\"cmd\":\"ping\",\"v\":2,\"id\":\"p\"}");
    assert!(
        response.contains("\"pong\":true") && response.contains("\"id\":\"p\""),
        "ping: {response}"
    );
    // Unsupported versions and malformed ids are errors.
    let response = send(&format!("{query},\"v\":3}}"));
    assert!(
        response.contains("\"ok\":false") && response.contains("unsupported protocol version"),
        "v3: {response}"
    );
    let response = send(&format!("{query},\"id\":[1]}}"));
    assert!(response.contains("\"ok\":false"), "bad id: {response}");

    // configure: default_k applies to k-less queries, live.
    let response = send("{\"cmd\":\"configure\",\"default_k\":5,\"v\":2}");
    assert!(
        response.contains("\"configured\":true") && response.contains("\"default_k\":5"),
        "configure: {response}"
    );
    let response = send("{\"query\":[[1,2],[2,3]],\"algo\":\"exact\",\"index\":false}");
    assert_eq!(
        response.matches("\"trajectory_id\"").count(),
        5,
        "default_k not applied: {response}"
    );
    // configure with no knobs is an error, as is an unknown command.
    assert!(send("{\"cmd\":\"configure\"}").contains("\"ok\":false"));
    assert!(send("{\"cmd\":\"rewind\"}").contains("unknown cmd"));

    // info reports the serving state.
    let response = send("{\"cmd\":\"info\",\"v\":2}");
    for needle in [
        "\"epoch\":1",
        "\"trajectories\":12",
        "\"protocol\":[1,2]",
        "\"build\":",
        "\"default_k\":5",
    ] {
        assert!(
            response.contains(needle),
            "info missing {needle}: {response}"
        );
    }

    server.stop();
    drop(stream);
    server.wait();
}

/// The acceptance scenario: a live server is reloaded to a different
/// corpus over the wire — no restart — while v1 clients keep querying.
/// Epoch bumps, the cache purge is visible in `stats`, post-reload
/// answers are byte-identical to a cold engine on the new corpus, and
/// not one concurrent v1 request errors.
#[test]
fn live_reload_over_the_wire() {
    let db_a = shared_db(20);
    let corpus_b = generate(&DatasetSpec::porto(), 15, 99);
    let db_b = TrajectoryDb::build(corpus_b.clone()).into_shared();
    let dir = std::env::temp_dir().join(format!("simsub-reload-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path_b = dir.join("corpus_b.csv");
    write_csv_file(&path_b, &corpus_b).unwrap();

    let engine = Arc::new(engine_with(&db_a, 2));
    let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    // Background v1 clients: distinct connections firing v1 queries
    // throughout the reload. Every response must be ok and envelope-free.
    let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let v1_clients: Vec<_> = (0..3)
        .map(|i| {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let (mut stream, mut reader) = wire(addr);
                let line = format!(
                    "{{\"query\":[[{i},2],[2,3],[3,{i}]],\"algo\":\"pss\",\"k\":2,\"index\":false}}"
                );
                let mut served = 0u32;
                while !done.load(std::sync::atomic::Ordering::Relaxed) && served < 10_000 {
                    let response = send_line(&mut stream, &mut reader, &line);
                    assert!(
                        response.contains("\"ok\":true"),
                        "v1 client {i} failed mid-swap: {response}"
                    );
                    assert!(
                        !response.contains("\"epoch\""),
                        "v1 client {i} got a v2 envelope: {response}"
                    );
                    served += 1;
                }
                served
            })
        })
        .collect();

    let (mut stream, mut reader) = wire(addr);
    let mut send = |line: &str| send_line(&mut stream, &mut reader, line);
    let query_points: Vec<String> = db_a.view(0).to_points()[..8]
        .iter()
        .map(|p| format!("[{},{}]", p.x, p.y))
        .collect();
    let query_line = format!(
        "{{\"query\":[{}],\"algo\":\"exact\",\"measure\":\"dtw\",\"k\":3,\"index\":false,\
         \"v\":2,\"id\":\"q\"}}",
        query_points.join(",")
    );

    // Warm the cache on epoch 1.
    let first = send(&query_line);
    assert!(
        first.contains("\"epoch\":1") && first.contains("\"cached\":false"),
        "first: {first}"
    );
    let repeat = send(&query_line);
    assert!(repeat.contains("\"cached\":true"), "repeat: {repeat}");

    // Live reload to corpus B.
    let reload_line = format!(
        "{{\"cmd\":\"reload\",\"corpus\":{},\"v\":2,\"id\":\"r1\"}}",
        json_string(&path_b.display().to_string())
    );
    let reloaded = send(&reload_line);
    for needle in [
        "\"ok\":true",
        "\"reloaded\":true",
        "\"previous_epoch\":1",
        "\"epoch\":2",
        "\"trajectories\":15",
        "\"id\":\"r1\"",
    ] {
        assert!(
            reloaded.contains(needle),
            "reload missing {needle}: {reloaded}"
        );
    }

    // The purge is on the stats wire response.
    let stats = send("{\"cmd\":\"stats\"}");
    assert!(stats.contains("\"swaps\":1"), "stats: {stats}");
    let evicted: f64 = stats
        .split("\"cache_evicted_on_swap\":")
        .nth(1)
        .and_then(|rest| rest.split([',', '}']).next()?.parse().ok())
        .expect("cache_evicted_on_swap in stats");
    assert!(evicted >= 1.0, "no evictions visible: {stats}");

    // Same query line now answers cold from corpus B at epoch 2...
    let after = send(&query_line);
    assert!(
        after.contains("\"epoch\":2") && after.contains("\"cached\":false"),
        "after: {after}"
    );
    // ...byte-identical to a cold engine + server started on corpus B.
    let cold_engine = Arc::new(QueryEngine::start(
        CorpusSnapshot::new(Arc::clone(&db_b)),
        EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        },
    ));
    let cold_server = Server::bind(Arc::clone(&cold_engine), "127.0.0.1:0").expect("bind");
    let (mut cold_stream, mut cold_reader) = wire(cold_server.local_addr());
    let cold = send_line(&mut cold_stream, &mut cold_reader, &query_line);
    assert_eq!(
        results_part(&after),
        results_part(&cold),
        "post-reload answer differs from a cold engine on the new corpus"
    );
    cold_server.stop();
    drop(cold_stream);
    cold_server.wait();

    // v1 clients ran through the whole swap without a single error.
    done.store(true, std::sync::atomic::Ordering::Relaxed);
    for client in v1_clients {
        let served = client.join().expect("v1 client panicked");
        assert!(served > 0, "v1 client never got a request through");
    }

    let bye = send("{\"cmd\":\"shutdown\"}");
    assert!(bye.contains("\"bye\":true"), "bye: {bye}");
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `stats` wire response is append-only: the fourteen frozen-prefix
/// fields keep their exact order (pre-observability clients key on it),
/// the observability fields only ever append after them, and v1 query
/// responses never grow fields — in particular no `trace`, even when the
/// client tries to request one (tracing is a v2 opt-in).
#[test]
fn stats_wire_response_is_append_only_and_v1_stays_frozen() {
    let db = shared_db(12);
    let engine = Arc::new(engine_with(&db, 1));
    let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0").expect("bind");
    let (mut stream, mut reader) = wire(server.local_addr());
    let mut send = |line: &str| send_line(&mut stream, &mut reader, line);

    let query = queries_from(&db, 1).remove(0);
    let points: Vec<String> = query.iter().map(|p| format!("[{},{}]", p.x, p.y)).collect();
    let body = format!(
        "\"query\":[{}],\"algo\":\"exact\",\"measure\":\"dtw\",\"k\":2",
        points.join(",")
    );
    assert!(send(&format!("{{{body}}}")).contains("\"ok\":true"));
    assert!(send(&format!("{{{body}}}")).contains("\"cached\":true"));

    let stats = send("{\"cmd\":\"stats\"}");
    // Frozen prefix: the first fourteen stats keys, in this exact order.
    let frozen = [
        "requests",
        "cache_hits",
        "hit_rate",
        "uptime_s",
        "qps",
        "p50_us",
        "p99_us",
        "mean_batch",
        "scan_candidates",
        "scan_pruned",
        "scan_searched",
        "prune_ratio",
        "swaps",
        "cache_evicted_on_swap",
    ];
    let mut cursor = 0;
    for key in frozen {
        let needle = format!("\"{key}\":");
        let at = stats[cursor..]
            .find(&needle)
            .unwrap_or_else(|| panic!("frozen field {key} missing or out of order: {stats}"));
        cursor += at + needle.len();
    }
    // Additive observability fields land strictly after the prefix.
    for key in [
        "p999_us",
        "batch_p50",
        "batch_p99",
        "queue_depth",
        "inflight",
        "cache_evictions",
        "slow_queries",
        "scan_pruned_kim",
        "scan_pruned_mbr",
        "scan_searched_cells",
        "ns_per_cell",
        "audit_samples",
        "audit_dropped",
        "audit_ar",
        "latency_buckets",
        "batch_buckets",
    ] {
        let needle = format!("\"{key}\":");
        assert!(
            stats[cursor..].contains(&needle),
            "additive field {key} missing after the frozen prefix: {stats}"
        );
    }
    // Bucket pairs carry the two served requests.
    assert!(
        stats.contains("\"latency_buckets\":[["),
        "latency buckets empty: {stats}"
    );

    // v1 bit-compat: `trace` never appears on a v1 response, even when
    // the client sets the flag.
    let v1 = send(&format!("{{{body},\"trace\":true}}"));
    assert!(v1.contains("\"ok\":true"), "v1 traced: {v1}");
    assert!(
        !v1.contains("\"trace\"") && !v1.contains("\"v\":"),
        "v1 response grew fields: {v1}"
    );
    // v2 without the flag stays trace-less too: it is per-request opt-in.
    let v2_plain = send(&format!("{{{body},\"v\":2}}"));
    assert!(
        !v2_plain.contains("\"trace\""),
        "untraced v2 response grew a trace: {v2_plain}"
    );

    server.stop();
    drop(stream);
    server.wait();
}

/// Minimal JSON string quoting for paths embedded in request lines.
fn json_string(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}
