//! Property harness for the sharded-corpus contract: for any corpus, any
//! query, any shard count in 1..8, and either partitioner,
//! `ShardedDb::top_k` must be **byte-identical** — same ids, same score
//! bit patterns, same order — to `TrajectoryDb::top_k` over the same
//! corpus. Covers every similarity measure wired into the search path
//! (DTW, discrete Frechet, and a trained t2vec model), both search
//! algorithms the service dispatches by default paths (ExactS, PSS),
//! indexed and full-scan modes, the batched entry point, and the
//! parallel fan-out.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simsub::core::{ExactS, Pss, SubtrajSearch, TopKResult};
use simsub::index::{PartitionerKind, ShardedDb, TrajectoryDb};
use simsub::measures::{Dtw, Frechet, Measure, T2Vec, T2VecConfig};
use simsub::trajectory::{Mbr, Point, Trajectory};

const SHARD_COUNTS: std::ops::RangeInclusive<usize> = 1..=8;
const PARTITIONERS: [PartitionerKind; 2] = [PartitionerKind::Hash, PartitionerKind::Grid];

fn walk(seed: u64, len: usize, origin: (f64, f64)) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut x, mut y) = origin;
    (0..len)
        .map(|i| {
            x += rng.gen_range(-1.5..1.5);
            y += rng.gen_range(-1.5..1.5);
            Point::new(x, y, i as f64)
        })
        .collect()
}

/// A random corpus with mixed spatial layout: some trajectories cluster,
/// some spread, so grid shards range from crowded to empty.
fn random_corpus(seed: u64, count: usize) -> Vec<Trajectory> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc0ffee);
    (0..count)
        .map(|i| {
            let origin = if i % 3 == 0 {
                (0.0, 0.0) // cluster near the origin
            } else {
                (rng.gen_range(-80.0..80.0), rng.gen_range(-80.0..80.0))
            };
            let len = rng.gen_range(6usize..20);
            Trajectory::new_unchecked(i as u64, walk(seed.wrapping_add(i as u64), len, origin))
        })
        .collect()
}

/// Byte-level equality: ids, subtrajectory ranges, and the exact bit
/// patterns of distance and similarity. `assert_eq!` on `TopKResult`
/// would accept `-0.0 == 0.0`; the acceptance criterion is stricter.
fn assert_identical(got: &[TopKResult], want: &[TopKResult], context: &str) {
    assert_eq!(got.len(), want.len(), "hit count differs: {context}");
    for (rank, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.trajectory_id, w.trajectory_id, "rank {rank}: {context}");
        assert_eq!(g.result.range, w.result.range, "rank {rank}: {context}");
        assert_eq!(
            g.result.distance.to_bits(),
            w.result.distance.to_bits(),
            "rank {rank} distance bits: {context}"
        );
        assert_eq!(
            g.result.similarity.to_bits(),
            w.result.similarity.to_bits(),
            "rank {rank} similarity bits: {context}"
        );
    }
}

/// Asserts the full contract for one corpus/query/measure/algorithm
/// combination across all shard counts and partitioners.
fn check_equivalence(
    corpus: &[Trajectory],
    algo: &(dyn SubtrajSearch + Sync),
    measure: &dyn Measure,
    query: &[Point],
    k: usize,
) {
    let single = TrajectoryDb::build(corpus.to_vec());
    for use_index in [false, true] {
        let want = single.top_k(algo, measure, query, k, use_index);
        let want_batch = single.top_k_batch(algo, measure, &[query], k, use_index);
        for shards in SHARD_COUNTS {
            for kind in PARTITIONERS {
                let sharded = ShardedDb::build(corpus.to_vec(), shards, kind);
                let context = format!(
                    "shards={shards} kind={} index={use_index} measure={} algo={} k={k}",
                    kind.name(),
                    measure.name(),
                    algo.name(),
                );
                assert_identical(
                    &sharded.top_k(algo, measure, query, k, use_index),
                    &want,
                    &context,
                );
                assert_identical(
                    &sharded.top_k_batch(algo, measure, &[query], k, use_index)[0],
                    &want_batch[0],
                    &format!("batch {context}"),
                );
                assert_identical(
                    &sharded.top_k_parallel(algo, measure, query, k, use_index, 4),
                    &want,
                    &format!("parallel {context}"),
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The headline property: random corpora and queries, every shard
    /// count in 1..8, both partitioners, DTW and Frechet (the built-in
    /// measures on the search path; the learned t2vec measure has its
    /// own trained-model case below), ExactS and PSS.
    #[test]
    fn sharded_topk_is_byte_identical(
        seed in 0u64..10_000,
        count in 1usize..36,
        k in 1usize..7,
        qlen in 3usize..10,
    ) {
        let corpus = random_corpus(seed, count);
        let query = walk(seed ^ 0x9e37, qlen, (0.0, 0.0));
        for measure in [&Dtw as &dyn Measure, &Frechet as &dyn Measure] {
            check_equivalence(&corpus, &ExactS, measure, &query, k);
            check_equivalence(&corpus, &Pss, measure, &query, k);
        }
    }

    /// Candidate sets agree with the single R-tree as *sets* (the sharded
    /// surface sorts, the single tree returns traversal order).
    #[test]
    fn sharded_candidates_equal_single_tree(
        seed in 0u64..10_000,
        count in 1usize..50,
        qlen in 2usize..12,
    ) {
        let corpus = random_corpus(seed, count);
        let single = TrajectoryDb::build(corpus.clone());
        let qmbr = Mbr::of_points(&walk(seed ^ 0x51ab, qlen, (0.0, 0.0)));
        let mut want = single.candidate_ids(&qmbr);
        want.sort_unstable();
        for shards in SHARD_COUNTS {
            for kind in PARTITIONERS {
                let sharded = ShardedDb::build(corpus.clone(), shards, kind);
                prop_assert_eq!(
                    sharded.candidate_ids(&qmbr),
                    want.clone(),
                    "shards={} kind={}", shards, kind.name()
                );
            }
        }
    }

    /// Multi-query batches match per-query answers under sharding, with
    /// queries of different lengths sharing one fan-out.
    #[test]
    fn sharded_batch_matches_per_query(
        seed in 0u64..10_000,
        count in 2usize..30,
        k in 1usize..5,
    ) {
        let corpus = random_corpus(seed, count);
        let queries: Vec<Vec<Point>> = (0..4)
            .map(|i| walk(seed.wrapping_mul(31).wrapping_add(i), 4 + i as usize, (0.0, 0.0)))
            .collect();
        let refs: Vec<&[Point]> = queries.iter().map(Vec::as_slice).collect();
        for shards in [1, 3, 8] {
            for kind in PARTITIONERS {
                let sharded = ShardedDb::build(corpus.clone(), shards, kind);
                for use_index in [false, true] {
                    let batched = sharded.top_k_batch(&ExactS, &Dtw, &refs, k, use_index);
                    for (got, q) in batched.iter().zip(&queries) {
                        let want = sharded.top_k(&ExactS, &Dtw, q, k, use_index);
                        assert_identical(got, &want,
                            &format!("shards={shards} kind={} index={use_index}", kind.name()));
                    }
                }
            }
        }
    }
}

/// The learned measure: a t2vec model trained once (deterministic seed)
/// and shared across layouts. Embedding distances are float-heavy, so
/// bitwise equality here is a strong signal the merge never re-derives
/// scores.
#[test]
fn sharded_topk_identical_under_trained_t2vec() {
    let corpus = random_corpus(77, 24);
    let cfg = T2VecConfig {
        steps: 40,
        hidden_dim: 8,
        seed: 7,
        ..Default::default()
    };
    let (model, _sep) = T2Vec::train(&corpus, &cfg);
    let query = walk(0x72ec, 8, (0.0, 0.0));
    check_equivalence(&corpus, &ExactS, &model, &query, 4);
    check_equivalence(&corpus, &Pss, &model, &query, 3);
}

/// Regression: clustered corpora leave grid shards empty; the fan-out
/// must treat an empty shard's R-tree as "no candidates", not panic.
#[test]
fn empty_grid_shards_do_not_break_equivalence() {
    // Everything piles into two far-apart clusters: most of the 8 grid
    // shards end up empty.
    let mut corpus = Vec::new();
    for i in 0..8u64 {
        let origin = if i % 2 == 0 {
            (0.0, 0.0)
        } else {
            (400.0, 400.0)
        };
        corpus.push(Trajectory::new_unchecked(i, walk(i, 12, origin)));
    }
    let sharded = ShardedDb::build(corpus.clone(), 8, PartitionerKind::Grid);
    assert!(
        sharded.shards().iter().any(|s| s.is_empty()),
        "test must actually produce an empty shard"
    );
    check_equivalence(&corpus, &ExactS, &Dtw, &walk(99, 6, (400.0, 400.0)), 3);
    check_equivalence(&corpus, &Pss, &Frechet, &walk(98, 5, (0.0, 0.0)), 2);
}
