//! Property harness for the prune-first scan contract: for any corpus,
//! any query, any measure on the search path (DTW, discrete Frechet, a
//! trained t2vec model), either service-default algorithm (ExactS, PSS),
//! and shard counts 1..4, the pruned scan must be **byte-identical** —
//! same ids, same score bit patterns, same order — to the unpruned
//! reference scan, with consistent [`PruneStats`]
//! (`scanned == pruned + searched`) and admissible bounds
//! (`bound >= true best subtrajectory similarity` for every trajectory).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simsub::core::{
    top_k_search_batch_with_stats, top_k_search_parallel_with_stats, top_k_search_with_stats,
    BoundCascade, ExactS, PruneStats, Pss, SubtrajSearch, TopKResult,
};
use simsub::index::{PartitionerKind, ShardedDb, TrajectoryDb};
use simsub::measures::{Dtw, Frechet, Measure, T2Vec, T2VecConfig};
use simsub::trajectory::{Point, Trajectory};

const SHARD_COUNTS: std::ops::RangeInclusive<usize> = 1..=4;

fn walk(seed: u64, len: usize, origin: (f64, f64)) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut x, mut y) = origin;
    (0..len)
        .map(|i| {
            x += rng.gen_range(-1.5..1.5);
            y += rng.gen_range(-1.5..1.5);
            Point::new(x, y, i as f64)
        })
        .collect()
}

/// Mixed spatial layout (clustered near the origin + spread far away) so
/// both "prunes almost everything" and "prunes nothing" regimes occur.
fn random_corpus(seed: u64, count: usize) -> Vec<Trajectory> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xdead_beef);
    (0..count)
        .map(|i| {
            let origin = if i % 3 == 0 {
                (0.0, 0.0)
            } else {
                (rng.gen_range(-90.0..90.0), rng.gen_range(-90.0..90.0))
            };
            let len = rng.gen_range(5usize..18);
            Trajectory::new_unchecked(i as u64, walk(seed.wrapping_add(i as u64), len, origin))
        })
        .collect()
}

/// Byte-level equality: ids, ranges, and exact score bit patterns.
fn assert_identical(got: &[TopKResult], want: &[TopKResult], context: &str) {
    assert_eq!(got.len(), want.len(), "hit count differs: {context}");
    for (rank, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.trajectory_id, w.trajectory_id, "rank {rank}: {context}");
        assert_eq!(g.result.range, w.result.range, "rank {rank}: {context}");
        assert_eq!(
            g.result.distance.to_bits(),
            w.result.distance.to_bits(),
            "rank {rank} distance bits: {context}"
        );
        assert_eq!(
            g.result.similarity.to_bits(),
            w.result.similarity.to_bits(),
            "rank {rank} similarity bits: {context}"
        );
    }
}

fn assert_stats(stats: &PruneStats, candidates: u64, context: &str) {
    assert!(
        stats.is_consistent(),
        "scanned != pruned + searched: {stats:?} ({context})"
    );
    assert_eq!(stats.scanned, candidates, "scanned everything: {context}");
}

/// Pruned == unpruned across the sequential, parallel, batched, single-
/// database, and sharded scan paths for one combination.
fn check_prune_equivalence(
    corpus: &[Trajectory],
    algo: &(dyn SubtrajSearch + Sync),
    measure: &dyn Measure,
    query: &[Point],
    k: usize,
) {
    let n = corpus.len() as u64;
    let context_base = format!("measure={} algo={} k={k}", measure.name(), algo.name());

    // Core scans over the raw slice.
    let (want, ref_stats) = top_k_search_with_stats(algo, measure, corpus, query, k, false);
    assert_stats(&ref_stats, n, &context_base);
    assert_eq!(ref_stats.pruned(), 0, "reference never prunes");
    let (pruned, stats) = top_k_search_with_stats(algo, measure, corpus, query, k, true);
    assert_identical(&pruned, &want, &format!("sequential {context_base}"));
    assert_stats(&stats, n, &context_base);
    let (par, par_stats) =
        top_k_search_parallel_with_stats(algo, measure, corpus, query, k, 4, true);
    assert_identical(&par, &want, &format!("parallel {context_base}"));
    assert_stats(&par_stats, n, &context_base);
    let (batch, batch_stats) =
        top_k_search_batch_with_stats(algo, measure, corpus, &[query], k, true);
    assert_identical(&batch[0], &want, &format!("batched {context_base}"));
    assert_stats(&batch_stats, n, &context_base);

    // Indexed database and sharded layouts, both index modes.
    let db = TrajectoryDb::build(corpus.to_vec());
    for use_index in [false, true] {
        let (want_db, _) = db.top_k_with_stats(algo, measure, query, k, use_index, false);
        let (got_db, db_stats) = db.top_k_with_stats(algo, measure, query, k, use_index, true);
        let context = format!("{context_base} index={use_index}");
        assert_identical(&got_db, &want_db, &format!("db {context}"));
        assert!(db_stats.is_consistent(), "db stats: {context}");
        for shards in SHARD_COUNTS {
            for kind in [PartitionerKind::Hash, PartitionerKind::Grid] {
                let sharded = ShardedDb::build(corpus.to_vec(), shards, kind);
                let context = format!("{context} shards={shards} kind={}", kind.name());
                let (got, stats) =
                    sharded.top_k_with_stats(algo, measure, query, k, use_index, true);
                assert_identical(&got, &want_db, &format!("sharded {context}"));
                assert!(stats.is_consistent(), "sharded stats: {context}");
                let (got_par, par_stats) =
                    sharded.top_k_parallel_with_stats(algo, measure, query, k, use_index, 4, true);
                assert_identical(&got_par, &want_db, &format!("sharded parallel {context}"));
                assert!(par_stats.is_consistent(), "parallel stats: {context}");
                let (got_batch, batch_stats) =
                    sharded.top_k_batch_with_stats(algo, measure, &[query], k, use_index, true);
                assert_identical(&got_batch[0], &want_db, &format!("sharded batch {context}"));
                assert!(batch_stats.is_consistent(), "batch stats: {context}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline property: pruned scans are byte-identical to the
    /// unpruned reference across measures × algorithms × shard counts
    /// 1..4 × partitioners × index modes, with consistent counters.
    #[test]
    fn pruned_scan_is_byte_identical(
        seed in 0u64..10_000,
        count in 1usize..30,
        k in 1usize..6,
        qlen in 3usize..9,
    ) {
        let corpus = random_corpus(seed, count);
        let query = walk(seed ^ 0x5eed, qlen, (0.0, 0.0));
        for measure in [&Dtw as &dyn Measure, &Frechet as &dyn Measure] {
            check_prune_equivalence(&corpus, &ExactS, measure, &query, k);
            check_prune_equivalence(&corpus, &Pss, measure, &query, k);
        }
    }

    /// Admissibility: both cascade stages upper-bound the true best
    /// subtrajectory similarity (ExactS) for every trajectory of a
    /// random corpus, and the envelope is never looser than the coarse
    /// screen.
    #[test]
    fn bounds_are_admissible_on_random_corpora(
        seed in 0u64..10_000,
        count in 1usize..20,
        qlen in 2usize..8,
    ) {
        let corpus = random_corpus(seed, count);
        let query = walk(seed ^ 0xb0bd, qlen, (0.0, 0.0));
        for measure in [&Dtw as &dyn Measure, &Frechet as &dyn Measure] {
            let mut cascade = BoundCascade::new(measure, &query);
            prop_assert!(cascade.is_active());
            for t in &corpus {
                let best = ExactS.search(measure, t.points(), &query).similarity;
                let coarse = cascade.coarse_bound(&t.mbr());
                let envelope = cascade.envelope_bound(&t.mbr());
                prop_assert!(envelope <= coarse + 1e-12,
                    "envelope looser than coarse: traj {} {}", t.id, measure.name());
                prop_assert!(coarse >= best - 1e-12,
                    "coarse bound {} < best {} for traj {} under {}",
                    coarse, best, t.id, measure.name());
                prop_assert!(envelope >= best - 1e-12,
                    "envelope bound {} < best {} for traj {} under {}",
                    envelope, best, t.id, measure.name());
            }
        }
    }

    /// Multi-query batches: pruned batched scans match pruned per-query
    /// scans (which themselves match the unpruned reference above).
    #[test]
    fn pruned_batch_matches_per_query(
        seed in 0u64..10_000,
        count in 2usize..24,
        k in 1usize..5,
    ) {
        let corpus = random_corpus(seed, count);
        let queries: Vec<Vec<Point>> = (0..3)
            .map(|i| walk(seed.wrapping_mul(17).wrapping_add(i), 3 + i as usize, (0.0, 0.0)))
            .collect();
        let refs: Vec<&[Point]> = queries.iter().map(Vec::as_slice).collect();
        let (batched, stats) =
            top_k_search_batch_with_stats(&Pss, &Dtw, &corpus, &refs, k, true);
        prop_assert!(stats.is_consistent());
        for (got, q) in batched.iter().zip(&queries) {
            let (want, _) = top_k_search_with_stats(&Pss, &Dtw, &corpus, q, k, false);
            assert_identical(got, &want, "pruned batch vs unpruned per-query");
        }
    }
}

/// The learned measure admits no bound (`distance_aggregate` is `None`):
/// the scan must never prune under t2vec, and pruned == unpruned holds
/// trivially but is still asserted bitwise with a trained model.
#[test]
fn t2vec_is_never_pruned_and_stays_identical() {
    let corpus = random_corpus(42, 18);
    let cfg = T2VecConfig {
        steps: 40,
        hidden_dim: 8,
        seed: 11,
        ..Default::default()
    };
    let (model, _sep) = T2Vec::train(&corpus, &cfg);
    let query = walk(0xabcd, 7, (0.0, 0.0));
    for algo in [&ExactS as &(dyn SubtrajSearch + Sync), &Pss] {
        let (want, _) = top_k_search_with_stats(algo, &model, &corpus, &query, 4, false);
        let (pruned, stats) = top_k_search_with_stats(algo, &model, &corpus, &query, 4, true);
        assert_identical(&pruned, &want, "t2vec pruned vs unpruned");
        assert_eq!(stats.pruned(), 0, "no admissible bound exists for t2vec");
        assert_eq!(stats.searched, corpus.len() as u64);
    }
    // And the full layout sweep for one algorithm.
    check_prune_equivalence(&corpus, &Pss, &model, &query, 3);
}

/// RLS is marked non-admissible (`reported_similarity_is_admissible` is
/// false), so even under DTW the scan must search every candidate.
#[test]
fn rls_disables_pruning() {
    use simsub::core::{train_rls, MdpConfig, Rls, RlsTrainConfig};
    let corpus = random_corpus(7, 10);
    let cfg = RlsTrainConfig::paper(MdpConfig::rls(), 6);
    let report = train_rls(&Dtw, &corpus, &corpus, &cfg);
    let rls = Rls::new(report.policy, MdpConfig::rls());
    assert!(!rls.reported_similarity_is_admissible());
    let query = walk(0x715, 6, (0.0, 0.0));
    let (want, _) = top_k_search_with_stats(&rls, &Dtw, &corpus, &query, 3, false);
    let (got, stats) = top_k_search_with_stats(&rls, &Dtw, &corpus, &query, 3, true);
    assert_identical(&got, &want, "rls pruned vs unpruned");
    assert_eq!(stats.pruned(), 0, "non-admissible algorithms never prune");
}

/// The clustered regime the serving corpus actually looks like: a tight
/// query against far-away clusters must prune most of the corpus *and*
/// stay byte-identical — the end-to-end shape of the acceptance
/// criterion, in miniature.
#[test]
fn clustered_corpus_prunes_most_of_the_scan() {
    let mut corpus = Vec::new();
    for i in 0..40u64 {
        let origin = ((i % 8) as f64 * 60.0, (i / 8) as f64 * 60.0);
        corpus.push(Trajectory::new_unchecked(i, walk(i + 1, 14, origin)));
    }
    let query = corpus[0].points()[2..8].to_vec();
    let (want, _) = top_k_search_with_stats(&Pss, &Dtw, &corpus, &query, 3, false);
    let (got, stats) = top_k_search_with_stats(&Pss, &Dtw, &corpus, &query, 3, true);
    assert_identical(&got, &want, "clustered corpus");
    assert!(stats.is_consistent());
    assert!(
        stats.prune_ratio() >= 0.5,
        "expected at least half the corpus pruned, got {:?}",
        stats
    );
}
