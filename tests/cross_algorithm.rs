//! Cross-algorithm consistency: every algorithm in the suite, under every
//! measure, must return a valid range whose exact distance is no better
//! than ExactS's optimum; the DTW-specific exact baselines must agree
//! with ExactS exactly.

use simsub::core::{
    train_rls, ExactS, MdpConfig, Pos, PosD, Pss, RandomS, Rls, RlsTrainConfig, SimTra, SizeS,
    Spring, SubtrajSearch, Ucr,
};
use simsub::data::{generate, sample_pairs, DatasetSpec};
use simsub::measures::{CoordNormalizer, Dtw, Frechet, Measure, T2Vec};

fn quick_rls(
    corpus: &[simsub::trajectory::Trajectory],
    measure: &dyn Measure,
    mdp: MdpConfig,
) -> Rls {
    let report = train_rls(measure, corpus, corpus, &RlsTrainConfig::paper(mdp, 15));
    Rls::new(report.policy, mdp)
}

#[test]
fn no_algorithm_beats_exacts_under_any_measure() {
    let corpus = generate(&DatasetSpec::porto(), 30, 5);
    let pairs = sample_pairs(&corpus, 12, 15, 7);
    let t2vec = T2Vec::random(3, 8, CoordNormalizer::identity());
    let measures: [&dyn Measure; 3] = [&Dtw, &Frechet, &t2vec];

    for measure in measures {
        let rls = quick_rls(&corpus, measure, MdpConfig::rls());
        let rls_skip = quick_rls(&corpus, measure, MdpConfig::rls_skip(3));
        let algos: Vec<Box<dyn SubtrajSearch>> = vec![
            Box::new(SizeS::new(5)),
            Box::new(Pss),
            Box::new(Pos),
            Box::new(PosD::new(5)),
            Box::new(RandomS::new(20, 1)),
            Box::new(SimTra),
            Box::new(rls),
            Box::new(rls_skip),
        ];
        for pair in &pairs {
            let data = corpus[pair.data_idx].points();
            let query = pair.query.points();
            let exact = ExactS.search(measure, data, query);
            for algo in &algos {
                let res = algo.search(measure, data, query);
                assert!(res.range.end < data.len(), "{}: invalid range", algo.name());
                // Compare on the *recomputed* exact distance of the
                // returned range (internal similarity may be approximate,
                // e.g. RLS-Skip's simplified prefix, PSS's reversed t2vec
                // suffix).
                let true_dist = measure.distance(res.range.slice(data), query);
                assert!(
                    true_dist + 1e-9 >= exact.distance,
                    "{} under {} beat ExactS: {} < {}",
                    algo.name(),
                    measure.name(),
                    true_dist,
                    exact.distance
                );
            }
        }
    }
}

#[test]
fn spring_matches_exacts_exactly_under_dtw() {
    let corpus = generate(&DatasetSpec::harbin(), 12, 9);
    let pairs = sample_pairs(&corpus, 10, 12, 3);
    for pair in &pairs {
        let data = corpus[pair.data_idx].points();
        let query = pair.query.points();
        let exact = ExactS.search(&Dtw, data, query);
        let spring = Spring::new().search(&Dtw, data, query);
        assert!(
            (spring.distance - exact.distance).abs() < 1e-6,
            "spring {} vs exact {}",
            spring.distance,
            exact.distance
        );
    }
}

#[test]
fn ucr_is_optimal_among_query_length_windows() {
    // UCR can't beat ExactS (it only sees length-m windows), but among
    // those windows it must be optimal at R = 1 (full band).
    let corpus = generate(&DatasetSpec::porto(), 10, 21);
    let pairs = sample_pairs(&corpus, 8, 12, 5);
    for pair in &pairs {
        let data = corpus[pair.data_idx].points();
        let query = pair.query.points();
        if data.len() < query.len() {
            continue;
        }
        let res = Ucr::new(1.0).search(&Dtw, data, query);
        let m = query.len();
        let best_window = (0..=data.len() - m)
            .map(|s| Dtw.distance(&data[s..s + m], query))
            .fold(f64::INFINITY, f64::min);
        assert!(
            (res.distance - best_window).abs() < 1e-6,
            "UCR {} vs best window {}",
            res.distance,
            best_window
        );
        let exact = ExactS.search(&Dtw, data, query);
        assert!(res.distance + 1e-9 >= exact.distance);
    }
}

#[test]
fn results_are_deterministic_across_runs() {
    let corpus = generate(&DatasetSpec::porto(), 20, 31);
    let pairs = sample_pairs(&corpus, 6, 15, 13);
    let algos: Vec<Box<dyn SubtrajSearch>> = vec![
        Box::new(ExactS),
        Box::new(SizeS::new(5)),
        Box::new(Pss),
        Box::new(RandomS::new(25, 77)),
        Box::new(Spring::new()),
        Box::new(Ucr::new(0.5)),
    ];
    for pair in &pairs {
        let data = corpus[pair.data_idx].points();
        let query = pair.query.points();
        for algo in &algos {
            let a = algo.search(&Dtw, data, query);
            let b = algo.search(&Dtw, data, query);
            assert_eq!(a.range, b.range, "{} nondeterministic", algo.name());
            assert_eq!(a.similarity, b.similarity);
        }
    }
}
