//! `simsub` — command-line interface for the similar-subtrajectory-search
//! library: generate corpora, train models, and run searches over CSV
//! trajectory files.
//!
//! ```text
//! simsub generate --dataset porto --count 500 --seed 7 --out corpus.csv
//! simsub train-t2vec --corpus corpus.csv --steps 400 --out t2vec.ssub
//! simsub train --corpus corpus.csv --measure dtw --episodes 800 --skip 3 --out policy.ssub
//! simsub search --corpus corpus.csv --data-id 5 --query query.csv --algo pss --measure dtw
//! simsub topk --corpus corpus.csv --query query.csv --k 10 --algo pss --index rtree
//! simsub serve --corpus corpus.csv --addr 127.0.0.1:7878 --workers 8
//! simsub admin info --addr 127.0.0.1:7878
//! simsub admin reload --addr 127.0.0.1:7878 --corpus fresh.csv --shards 4
//! ```

use simsub::core::{
    train_rls, ExactS, MdpConfig, Pos, PosD, Pss, Rls, RlsTrainConfig, SizeS, Spring, SubtrajSearch,
};
use simsub::data::{
    generate, read_bin_file, read_csv_file, write_bin_file, write_csv_file, DatasetSpec,
};
use simsub::index::{PartitionerKind, ShardedDb, TrajectoryDb};
use simsub::measures::{Dtw, Frechet, Measure, T2Vec, T2VecConfig};
use simsub::nn::BinaryCodec;
use simsub::rl::Policy;
use simsub::service::{
    json::Json, server::handle_admin_command, CorpusSnapshot, EngineConfig, QueryEngine, Server,
    StopHandle,
};
use simsub::trajectory::{CorpusArena, Trajectory};
use std::path::PathBuf;
use std::process::exit;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
        exit(2);
    };
    // `admin` and `corpus` take a positional action before their flags;
    // everything else is pure `--flag value` pairs.
    let result = if cmd == "admin" {
        match rest.split_first() {
            Some((action, admin_rest)) => match Flags::parse(admin_rest) {
                Ok(flags) => cmd_admin(action, &flags),
                Err(e) => {
                    eprintln!("error: {e}");
                    exit(2);
                }
            },
            None => Err("admin needs an action: info|stats|ping|reload|configure|shutdown".into()),
        }
    } else if cmd == "corpus" {
        match rest.split_first() {
            Some((action, corpus_rest)) => match Flags::parse(corpus_rest) {
                Ok(flags) => cmd_corpus(action, &flags),
                Err(e) => {
                    eprintln!("error: {e}");
                    exit(2);
                }
            },
            None => Err("corpus needs an action: pack|info".into()),
        }
    } else {
        let flags = match Flags::parse(rest) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: {e}");
                exit(2);
            }
        };
        match cmd.as_str() {
            "generate" => cmd_generate(&flags),
            "train-t2vec" => cmd_train_t2vec(&flags),
            "train" => cmd_train(&flags),
            "search" => cmd_search(&flags),
            "topk" => cmd_topk(&flags),
            "serve" => cmd_serve(&flags),
            "help" | "--help" | "-h" => {
                usage();
                Ok(())
            }
            other => Err(format!("unknown command '{other}'")),
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        exit(1);
    }
}

fn usage() {
    eprintln!(
        "simsub <command> [flags]\n\
         commands:\n\
         \x20 generate     --dataset porto|harbin|sports --count N [--seed S] --out FILE.csv\n\
         \x20 corpus       pack --corpus FILE.csv --out FILE.ssb   # packed binary corpus\n\
         \x20 corpus       info (--corpus FILE.csv | --corpus-bin FILE.ssb)\n\
         \x20 train-t2vec  --corpus FILE.csv [--steps N] [--hidden D] --out MODEL.ssub\n\
         \x20 train        --corpus FILE.csv --measure dtw|frechet|t2vec [--t2vec MODEL.ssub]\n\
         \x20              [--episodes N] [--skip K] [--no-suffix] --out POLICY.ssub\n\
         \x20 search       --corpus FILE.csv --data-id ID --query FILE.csv\n\
         \x20              --algo exact|sizes|pss|pos|posd|spring|rls --measure ...\n\
         \x20              [--policy POLICY.ssub] [--t2vec MODEL.ssub]\n\
         \x20 topk         (--corpus FILE.csv | --corpus-bin FILE.ssb) --query FILE.csv --k N\n\
         \x20              --algo ... --measure ... [--index rtree|none] [--threads T]\n\
         \x20              [--no-prune] [--shards N] [--partitioner hash|grid]\n\
         \x20 serve        (--corpus FILE.csv | --corpus-bin FILE.ssb) [--addr HOST:PORT]\n\
         \x20              [--io-model reactor|threads]  # default reactor (epoll, 10k+ conns)\n\
         \x20              [--workers N] [--batch B] [--cache N] [--cache-quantize Q]\n\
         \x20              [--batch-window-us N]  # micro-batch coalescing window cap (0 = off)\n\
         \x20              [--default-k N] [--policy POLICY.ssub] [--t2vec MODEL.ssub]\n\
         \x20              [--skip K] [--no-suffix] [--no-prune]\n\
         \x20              [--shards N] [--partitioner hash|grid]\n\
         \x20              [--reload-fifo PATH]   # named pipe accepting admin JSON lines\n\
         \x20              [--slow-query-us N]    # log traces of queries slower than N µs\n\
         \x20              [--audit-sample F]     # audit fraction F of cold answers (0..=1)\n\
         \x20              [--max-queue-depth N]  # shed queries past N queued (0 = unbounded)\n\
         \x20              [--default-deadline-ms N]  # deadline for queries without one (0 = none)\n\
         \x20              [--faults SPEC]        # arm fault injection (chaos testing)\n\
         \x20 admin        <info|stats|metrics|ping|shutdown> [--addr HOST:PORT]\n\
         \x20              # metrics prints Prometheus-style text exposition\n\
         \x20 admin        stats --watch SECS [--count M] [--addr HOST:PORT]\n\
         \x20              # one delta line per tick: qps, p99, hit rate, prune ratio\n\
         \x20 admin        reload (--corpus FILE.csv | --corpus-bin FILE.ssb) [--addr HOST:PORT]\n\
         \x20              [--shards N] [--partitioner hash|grid] [--policy F] [--t2vec F]\n\
         \x20              [--skip K] [--no-suffix]\n\
         \x20 admin        configure [--addr HOST:PORT] [--prune on|off] [--batch N]\n\
         \x20              [--cache N] [--default-k N] [--quantize Q]   # Q=0 exact keys\n\
         \x20              [--slow-query-us N] [--audit-sample F]\n\
         \x20              [--max-queue-depth N] [--default-deadline-ms N]\n\
         \x20              [--faults SPEC]   # SPEC like \"slow_scan=p:0.1:5\"; \"off\" disarms"
    );
}

/// Minimal `--key value` / `--switch` parser.
struct Flags {
    values: std::collections::HashMap<String, String>,
    switches: std::collections::HashSet<String>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut values = std::collections::HashMap::new();
        let mut switches = std::collections::HashSet::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("expected flag, found '{arg}'"));
            };
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                values.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                switches.insert(key.to_string());
                i += 1;
            }
        }
        Ok(Self { values, switches })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }

    fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: {v}")),
        }
    }

    fn switch(&self, key: &str) -> bool {
        self.switches.contains(key)
    }
}

/// Loads the corpus as a columnar arena from `--corpus FILE.csv` or
/// `--corpus-bin FILE.ssb` (a packed binary corpus — one buffered read +
/// validation, no CSV parse). Exactly one of the two must be given.
fn load_corpus_arena(flags: &Flags) -> Result<CorpusArena, String> {
    match (flags.get("corpus"), flags.get("corpus-bin")) {
        (Some(_), Some(_)) => Err("give either --corpus or --corpus-bin, not both".into()),
        (None, None) => Err("missing --corpus (or --corpus-bin)".into()),
        (Some(csv), None) => {
            let path = PathBuf::from(csv);
            let trajs =
                read_csv_file(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
            Ok(CorpusArena::from_trajectories(&trajs))
        }
        (None, Some(bin)) => {
            let path = PathBuf::from(bin);
            read_bin_file(&path).map_err(|e| format!("reading {}: {e}", path.display()))
        }
    }
}

fn load_corpus(flags: &Flags) -> Result<Vec<Trajectory>, String> {
    let path = PathBuf::from(flags.require("corpus")?);
    read_csv_file(&path).map_err(|e| format!("reading {}: {e}", path.display()))
}

fn load_query(flags: &Flags) -> Result<Trajectory, String> {
    let path = PathBuf::from(flags.require("query")?);
    let mut trajs = read_csv_file(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    match trajs.len() {
        1 => Ok(trajs.remove(0)),
        n => Err(format!(
            "query file must contain exactly 1 trajectory, found {n}"
        )),
    }
}

/// Builds the measure named by `--measure`, loading a t2vec model when
/// needed.
fn load_measure(flags: &Flags) -> Result<Box<dyn Measure>, String> {
    match flags.require("measure")? {
        "dtw" => Ok(Box::new(Dtw)),
        "frechet" => Ok(Box::new(Frechet)),
        "t2vec" => {
            let path = PathBuf::from(flags.require("t2vec")?);
            let model =
                T2Vec::load(&path).map_err(|e| format!("loading {}: {e}", path.display()))?;
            Ok(Box::new(model))
        }
        other => Err(format!("unknown measure '{other}' (dtw|frechet|t2vec)")),
    }
}

/// `--shards N [--partitioner hash|grid]`: `None` (unsharded) when
/// `--shards` is absent or 0.
fn sharding_from_flags(flags: &Flags) -> Result<Option<(usize, PartitionerKind)>, String> {
    let shards: usize = flags.parse_or("shards", 0)?;
    let partitioner: PartitionerKind = match flags.get("partitioner") {
        None => PartitionerKind::Hash,
        Some(name) => name.parse()?,
    };
    if shards == 0 && flags.get("partitioner").is_some() {
        return Err("--partitioner requires --shards N".into());
    }
    Ok((shards > 0).then_some((shards, partitioner)))
}

fn mdp_from_flags(flags: &Flags) -> Result<MdpConfig, String> {
    Ok(MdpConfig {
        skip_actions: flags.parse_or("skip", 0usize)?,
        use_suffix: !flags.switch("no-suffix"),
    })
}

fn load_algo(flags: &Flags, mdp: MdpConfig) -> Result<Box<dyn SubtrajSearch>, String> {
    Ok(match flags.require("algo")? {
        "exact" => Box::new(ExactS),
        "sizes" => Box::new(SizeS::new(flags.parse_or("xi", 5usize)?)),
        "pss" => Box::new(Pss),
        "pos" => Box::new(Pos),
        "posd" => Box::new(PosD::new(flags.parse_or("delay", 5usize)?)),
        "spring" => Box::new(Spring::new()),
        "rls" => {
            let path = PathBuf::from(flags.require("policy")?);
            let policy =
                Policy::load(&path).map_err(|e| format!("loading {}: {e}", path.display()))?;
            Box::new(Rls::new(policy, mdp))
        }
        other => {
            return Err(format!(
                "unknown algorithm '{other}' (exact|sizes|pss|pos|posd|spring|rls)"
            ))
        }
    })
}

fn cmd_generate(flags: &Flags) -> Result<(), String> {
    let spec = match flags.require("dataset")? {
        "porto" => DatasetSpec::porto(),
        "harbin" => DatasetSpec::harbin(),
        "sports" => DatasetSpec::sports(),
        other => return Err(format!("unknown dataset '{other}'")),
    };
    let count: usize = flags.parse_or("count", 100)?;
    let seed: u64 = flags.parse_or("seed", 0)?;
    let out = PathBuf::from(flags.require("out")?);
    let corpus = generate(&spec, count, seed);
    write_csv_file(&out, &corpus).map_err(|e| format!("writing {}: {e}", out.display()))?;
    let points: usize = corpus.iter().map(Trajectory::len).sum();
    println!(
        "wrote {} trajectories / {} points ({}) to {}",
        corpus.len(),
        points,
        spec.name,
        out.display()
    );
    Ok(())
}

/// `simsub corpus <pack|info>`: converts between CSV and the packed
/// binary corpus format (whose payload is the columnar arena's slabs —
/// see `simsub_data::bin_io`), and inspects either.
fn cmd_corpus(action: &str, flags: &Flags) -> Result<(), String> {
    match action {
        "pack" => {
            let path = PathBuf::from(flags.require("corpus")?);
            let trajs =
                read_csv_file(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
            let arena = CorpusArena::from_trajectories(&trajs);
            let out = PathBuf::from(flags.require("out")?);
            write_bin_file(&out, &arena).map_err(|e| format!("writing {}: {e}", out.display()))?;
            let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
            println!(
                "packed {} trajectories / {} points into {} ({} bytes; coordinates bit-exact)",
                arena.len(),
                arena.total_points(),
                out.display(),
                bytes
            );
            Ok(())
        }
        "info" => {
            let arena = load_corpus_arena(flags)?;
            println!(
                "{} trajectories, {} points, {} slab bytes (xs+ys+ts), ids {:?}..",
                arena.len(),
                arena.total_points(),
                arena.total_points() * 24,
                arena.ids().iter().take(5).collect::<Vec<_>>()
            );
            Ok(())
        }
        other => Err(format!("unknown corpus action '{other}' (pack|info)")),
    }
}

fn cmd_train_t2vec(flags: &Flags) -> Result<(), String> {
    let corpus = load_corpus(flags)?;
    let cfg = T2VecConfig {
        steps: flags.parse_or("steps", 400)?,
        hidden_dim: flags.parse_or("hidden", 16)?,
        seed: flags.parse_or("seed", 2020)?,
        ..Default::default()
    };
    let out = PathBuf::from(flags.require("out")?);
    println!(
        "training t2vec ({} steps, hidden {})...",
        cfg.steps, cfg.hidden_dim
    );
    let (model, sep) = T2Vec::train(&corpus, &cfg);
    model
        .save(&out)
        .map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!(
        "saved model ({} dims) to {}; separation diagnostic {:.2}",
        model.embedding_dim(),
        out.display(),
        sep
    );
    Ok(())
}

fn cmd_train(flags: &Flags) -> Result<(), String> {
    let corpus = load_corpus(flags)?;
    let measure = load_measure(flags)?;
    let mdp = mdp_from_flags(flags)?;
    let episodes: usize = flags.parse_or("episodes", 800)?;
    let max_q: usize = flags.parse_or("max-query-len", 25)?;
    let out = PathBuf::from(flags.require("out")?);

    let queries: Vec<Trajectory> = corpus
        .iter()
        .map(|t| {
            let len = t.len().min(max_q);
            Trajectory::new_unchecked(t.id, t.points()[..len].to_vec())
        })
        .collect();
    println!(
        "training {} for {episodes} episodes...",
        mdp.algorithm_name()
    );
    let mut cfg = RlsTrainConfig::paper(mdp, episodes);
    cfg.seed = flags.parse_or("seed", 2020)?;
    let report = train_rls(measure.as_ref(), &corpus, &queries, &cfg);
    report
        .policy
        .save(&out)
        .map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!(
        "saved policy to {} ({} transitions, validation score {:.4})",
        out.display(),
        report.transitions,
        report.validation_score
    );
    Ok(())
}

fn cmd_search(flags: &Flags) -> Result<(), String> {
    let corpus = load_corpus(flags)?;
    let measure = load_measure(flags)?;
    let mdp = mdp_from_flags(flags)?;
    let algo = load_algo(flags, mdp)?;
    let data_id: u64 = flags
        .require("data-id")?
        .parse()
        .map_err(|_| "bad --data-id".to_string())?;
    let query = load_query(flags)?;
    let data = corpus
        .iter()
        .find(|t| t.id == data_id)
        .ok_or_else(|| format!("trajectory {data_id} not in corpus"))?;
    let res = algo.search(measure.as_ref(), data.points(), query.points());
    println!(
        "{} over {}: subtrajectory [{}..{}] of trajectory {} — distance {:.6}, similarity {:.6}",
        algo.name(),
        measure.name(),
        res.range.start,
        res.range.end,
        data_id,
        res.distance,
        res.similarity
    );
    Ok(())
}

/// `simsub serve`: load a corpus (plus optional learned models), start the
/// query engine, and answer newline-delimited JSON queries over TCP until
/// a `{"cmd":"shutdown"}` arrives. With `--reload-fifo PATH`, a control
/// thread also reads admin JSON lines (`reload`, `configure`, `info`,
/// `stats`, `shutdown`) from a named pipe, so operators can hot-swap the
/// corpus without speaking TCP:
///
/// ```text
/// echo '{"cmd":"reload","corpus":"fresh.csv"}' > /tmp/simsub.fifo
/// ```
fn cmd_serve(flags: &Flags) -> Result<(), String> {
    let corpus = load_corpus_arena(flags)?;
    let addr = flags.get("addr").unwrap_or("127.0.0.1:7878").to_string();
    let cache_quantize: f64 = flags.parse_or("cache-quantize", 0.0)?;
    if !cache_quantize.is_finite() || cache_quantize < 0.0 {
        return Err("--cache-quantize must be finite and >= 0 (0 = exact keys)".into());
    }
    let audit_sample: f64 = flags.parse_or("audit-sample", 0.0)?;
    if !audit_sample.is_finite() || !(0.0..=1.0).contains(&audit_sample) {
        return Err("--audit-sample must be a fraction in [0, 1] (0 = off)".into());
    }
    let config = EngineConfig {
        workers: flags.parse_or("workers", EngineConfig::default().workers)?,
        max_batch: flags.parse_or("batch", EngineConfig::default().max_batch)?,
        batch_window_us: flags
            .parse_or("batch-window-us", EngineConfig::default().batch_window_us)?,
        cache_capacity: flags.parse_or("cache", EngineConfig::default().cache_capacity)?,
        // `--no-prune` forces the reference scan; otherwise the
        // SIMSUB_NO_PRUNE environment hatch decides (answers are
        // byte-identical either way).
        prune: !flags.switch("no-prune") && simsub::core::pruning_enabled(),
        default_k: flags.parse_or("default-k", EngineConfig::default().default_k)?,
        cache_key_quantize: (cache_quantize > 0.0).then_some(cache_quantize),
        slow_query_us: flags.parse_or("slow-query-us", 0u64)?,
        audit_sample,
        max_queue_depth: flags.parse_or("max-queue-depth", 0usize)?,
        default_deadline_ms: flags.parse_or("default-deadline-ms", 0u64)?,
        // `--faults off` forces disarmed even when SIMSUB_FAULTS is set;
        // no flag defers to the environment hatch.
        faults: flags.get("faults").map(|s| {
            if s == "off" {
                String::new()
            } else {
                s.to_string()
            }
        }),
    };
    if config.workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    if config.max_batch == 0 {
        return Err("--batch must be at least 1".into());
    }
    if config.default_k == 0 {
        return Err("--default-k must be at least 1".into());
    }

    // Same assembly path the admin `reload` command uses server-side, so
    // a served corpus and a reloaded corpus of the same files can never
    // behave differently.
    let policy_path = flags.get("policy").map(PathBuf::from);
    let t2vec_path = flags.get("t2vec").map(PathBuf::from);
    let mdp = mdp_from_flags(flags)?;
    let snapshot = CorpusSnapshot::assemble_arena(
        corpus,
        sharding_from_flags(flags)?,
        policy_path.as_deref().map(|p| (p, mdp)),
        t2vec_path.as_deref(),
    )?;

    let workers = config.workers;
    let prune = config.prune;
    let (corpus_len, corpus_points, shard_count) = {
        let c = snapshot.corpus();
        (c.len(), c.total_points(), c.shard_count())
    };
    let engine = Arc::new(QueryEngine::start(snapshot, config));
    // `--io-model reactor|threads` wins; otherwise SIMSUB_IO_MODEL, and
    // the reactor by default.
    let io_model = match flags.get("io-model") {
        Some(s) => s.parse().map_err(|e: String| format!("--io-model: {e}"))?,
        None => simsub::service::IoModel::from_env(),
    };
    let server = Server::bind_with(Arc::clone(&engine), &addr, io_model)
        .map_err(|e| format!("binding {addr}: {e}"))?;
    if let Some(fifo) = flags.get("reload-fifo") {
        spawn_reload_fifo(
            PathBuf::from(fifo),
            Arc::clone(&engine),
            server.stop_handle(),
        )?;
    }
    println!(
        "serving {} trajectories / {} points in {} shard(s) on {} with {} workers, prune={}, \
         io-model={} (newline-JSON, protocol v1+v2; send {{\"cmd\":\"shutdown\"}} to stop)",
        corpus_len,
        corpus_points,
        shard_count,
        server.local_addr(),
        workers,
        if prune { "on" } else { "off" },
        server.io_model()
    );
    server.wait();
    println!("server stopped");
    Ok(())
}

/// Control thread behind `serve --reload-fifo`: (re)opens the named pipe
/// and feeds each line through the same admin handler the TCP front-end
/// uses, printing the response to stdout. A `{"cmd":"shutdown"}` line
/// stops the server. The open blocks until a writer appears, so a final
/// write (or process exit) is needed for the thread to notice a stop —
/// it is detached and dies with the process either way.
fn spawn_reload_fifo(
    path: PathBuf,
    engine: Arc<QueryEngine>,
    stop: StopHandle,
) -> Result<(), String> {
    use std::io::BufRead;
    if !path.exists() {
        // Best-effort: create the FIFO so `echo '...' > path` works out
        // of the box (std has no mkfifo; a regular file would deliver
        // each line only once per open, i.e. only the first round).
        let created = std::process::Command::new("mkfifo")
            .arg(&path)
            .status()
            .map(|s| s.success())
            .unwrap_or(false);
        if !created {
            return Err(format!(
                "--reload-fifo: {} does not exist and mkfifo failed",
                path.display()
            ));
        }
    }
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileTypeExt;
        let meta = std::fs::metadata(&path)
            .map_err(|e| format!("--reload-fifo: stat {}: {e}", path.display()))?;
        if !meta.file_type().is_fifo() {
            return Err(format!(
                "--reload-fifo: {} is not a FIFO — a regular file would replay \
                 its commands on every reopen",
                path.display()
            ));
        }
    }
    println!("admin fifo: {}", path.display());
    std::thread::Builder::new()
        .name("simsub-reload-fifo".into())
        .spawn(move || {
            while !stop.is_stopped() {
                // Blocks until a writer opens the pipe; EOF when the last
                // writer closes, then reopen for the next command batch.
                let Ok(file) = std::fs::File::open(&path) else {
                    return;
                };
                for line in std::io::BufReader::new(file).lines() {
                    let Ok(line) = line else { break };
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    let response = match Json::parse(line) {
                        Err(e) => Json::Obj(vec![
                            ("ok".into(), Json::Bool(false)),
                            ("error".into(), Json::Str(format!("bad json: {e}"))),
                        ]),
                        Ok(parsed) => {
                            if parsed.get("cmd").and_then(Json::as_str) == Some("shutdown") {
                                stop.stop();
                                Json::Obj(vec![
                                    ("ok".into(), Json::Bool(true)),
                                    ("bye".into(), Json::Bool(true)),
                                ])
                            } else {
                                handle_admin_command(&engine, &parsed).unwrap_or_else(|| {
                                    Json::Obj(vec![
                                        ("ok".into(), Json::Bool(false)),
                                        (
                                            "error".into(),
                                            Json::Str(
                                                "fifo accepts admin commands only \
                                                 (reload|configure|info|stats|ping|shutdown)"
                                                    .into(),
                                            ),
                                        ),
                                    ])
                                })
                            }
                        }
                    };
                    println!("reload-fifo: {}", response.dump());
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        })
        .map_err(|e| format!("spawning fifo thread: {e}"))?;
    Ok(())
}

/// `simsub admin <action>`: a tiny protocol-v2 client for a running
/// `simsub serve`. Builds the command line, sends it with a request id,
/// prints the response verbatim, and fails the process when the server
/// answers `"ok":false`.
fn cmd_admin(action: &str, flags: &Flags) -> Result<(), String> {
    use std::io::{BufRead, BufReader, Write};
    if action == "stats" && (flags.get("watch").is_some() || flags.switch("watch")) {
        return cmd_admin_stats_watch(flags);
    }
    let mut fields: Vec<(String, Json)> = Vec::new();
    let mut field = |k: &str, v: Json| fields.push((k.to_string(), v));
    match action {
        "info" | "stats" | "ping" | "shutdown" | "metrics" => {
            field("cmd", Json::Str(action.into()))
        }
        "reload" => {
            field("cmd", Json::Str("reload".into()));
            // Paths are resolved by the *server*; make them absolute so
            // "fresh.csv" means the operator's cwd, not the server's.
            let (key, path) = match (flags.get("corpus"), flags.get("corpus-bin")) {
                (Some(_), Some(_)) => {
                    return Err("give either --corpus or --corpus-bin, not both".into())
                }
                (None, None) => return Err("missing --corpus (or --corpus-bin)".into()),
                (Some(csv), None) => ("corpus", csv),
                (None, Some(bin)) => ("corpus_bin", bin),
            };
            let path = std::fs::canonicalize(path)
                .map_err(|e| format!("resolving {path}: {e}"))?
                .display()
                .to_string();
            field(key, Json::Str(path));
            if let Some((shards, partitioner)) = sharding_from_flags(flags)? {
                field("shards", Json::Num(shards as f64));
                field("partitioner", Json::Str(partitioner.name().into()));
            }
            for key in ["policy", "t2vec"] {
                if let Some(path) = flags.get(key) {
                    let path = std::fs::canonicalize(path)
                        .map_err(|e| format!("resolving {path}: {e}"))?;
                    field(key, Json::Str(path.display().to_string()));
                }
            }
            if let Some(skip) = flags.get("skip") {
                let skip: usize = skip.parse().map_err(|_| "bad value for --skip")?;
                field("skip", Json::Num(skip as f64));
            }
            if flags.switch("no-suffix") {
                field("suffix", Json::Bool(false));
            }
        }
        "configure" => {
            field("cmd", Json::Str("configure".into()));
            if let Some(prune) = flags.get("prune") {
                field(
                    "prune",
                    Json::Bool(match prune {
                        "on" | "true" => true,
                        "off" | "false" => false,
                        other => return Err(format!("bad --prune '{other}' (on|off)")),
                    }),
                );
            }
            for (flag, key) in [
                ("batch", "max_batch"),
                ("cache", "cache_capacity"),
                ("default-k", "default_k"),
            ] {
                if let Some(value) = flags.get(flag) {
                    let value: usize = value
                        .parse()
                        .map_err(|_| format!("bad value for --{flag}: {value}"))?;
                    field(key, Json::Num(value as f64));
                }
            }
            if let Some(value) = flags.get("quantize") {
                let value: f64 = value
                    .parse()
                    .map_err(|_| format!("bad value for --quantize: {value}"))?;
                field("cache_key_quantize", Json::Num(value));
            }
            if let Some(value) = flags.get("slow-query-us") {
                let value: u64 = value
                    .parse()
                    .map_err(|_| format!("bad value for --slow-query-us: {value}"))?;
                field("slow_query_us", Json::Num(value as f64));
            }
            if let Some(value) = flags.get("audit-sample") {
                let value: f64 = value
                    .parse()
                    .map_err(|_| format!("bad value for --audit-sample: {value}"))?;
                field("audit_sample", Json::Num(value));
            }
            if let Some(value) = flags.get("max-queue-depth") {
                let value: usize = value
                    .parse()
                    .map_err(|_| format!("bad value for --max-queue-depth: {value}"))?;
                field("max_queue_depth", Json::Num(value as f64));
            }
            if let Some(value) = flags.get("default-deadline-ms") {
                let value: u64 = value
                    .parse()
                    .map_err(|_| format!("bad value for --default-deadline-ms: {value}"))?;
                field("default_deadline_ms", Json::Num(value as f64));
            }
            if let Some(spec) = flags.get("faults") {
                let spec = if spec == "off" { "" } else { spec };
                field("faults", Json::Str(spec.to_string()));
            }
        }
        other => {
            return Err(format!(
                "unknown admin action '{other}' \
                 (info|stats|metrics|ping|reload|configure|shutdown)"
            ))
        }
    }
    field("v", Json::Num(2.0));
    field(
        "id",
        Json::Str(format!("simsub-admin-{}", std::process::id())),
    );
    let line = Json::Obj(fields).dump();

    let addr = flags.get("addr").unwrap_or("127.0.0.1:7878");
    let stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    writer
        .write_all(format!("{line}\n").as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| format!("sending to {addr}: {e}"))?;
    let mut response = String::new();
    BufReader::new(stream)
        .read_line(&mut response)
        .map_err(|e| format!("reading from {addr}: {e}"))?;
    let response = response.trim();
    if response.is_empty() {
        return Err(format!("{addr} closed the connection without answering"));
    }
    match Json::parse(response) {
        Ok(v) if v.get("ok").and_then(Json::as_bool) == Some(true) => {
            // `metrics` prints the text exposition raw (scrape-ready);
            // everything else prints the response line verbatim.
            match (action, v.get("metrics").and_then(Json::as_str)) {
                ("metrics", Some(text)) => print!("{text}"),
                _ => println!("{response}"),
            }
            Ok(())
        }
        Ok(v) => {
            println!("{response}");
            Err(v
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("server answered ok:false")
                .to_string())
        }
        Err(e) => {
            println!("{response}");
            Err(format!("unparseable response: {e}"))
        }
    }
}

/// `simsub admin stats --watch N`: polls the `stats` command over one
/// persistent connection every `N` seconds and prints a one-line delta
/// per tick — interval qps (from request-count deltas), bucketed p99,
/// cache hit rate, prune ratio, and the live queue/in-flight gauges.
/// `--count M` stops after `M` delta lines (for scripts); default runs
/// until the connection drops or the process is killed.
fn cmd_admin_stats_watch(flags: &Flags) -> Result<(), String> {
    use std::io::{BufRead, BufReader, Write};
    let interval: f64 = match flags.get("watch") {
        None => 2.0, // bare `--watch`
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("bad value for --watch: {raw}"))?,
    };
    if !interval.is_finite() || interval <= 0.0 {
        return Err("--watch interval must be a positive number of seconds".into());
    }
    let count: usize = flags.parse_or("count", 0)?; // 0 = run forever
    let addr = flags.get("addr").unwrap_or("127.0.0.1:7878");
    let stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let line = Json::Obj(vec![
        ("cmd".into(), Json::Str("stats".into())),
        ("v".into(), Json::Num(2.0)),
        (
            "id".into(),
            Json::Str(format!("simsub-watch-{}", std::process::id())),
        ),
    ])
    .dump();
    let mut prev: Option<(std::time::Instant, f64)> = None;
    let mut printed = 0usize;
    loop {
        writer
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|()| writer.flush())
            .map_err(|e| format!("sending to {addr}: {e}"))?;
        let mut response = String::new();
        reader
            .read_line(&mut response)
            .map_err(|e| format!("reading from {addr}: {e}"))?;
        if response.trim().is_empty() {
            return Err(format!("{addr} closed the connection"));
        }
        let parsed =
            Json::parse(response.trim()).map_err(|e| format!("unparseable response: {e}"))?;
        let stats = parsed
            .get("stats")
            .ok_or_else(|| "response carries no \"stats\" object".to_string())?;
        let num = |key: &str| stats.get(key).and_then(Json::as_f64).unwrap_or(0.0);
        let now = std::time::Instant::now();
        let requests = num("requests");
        match prev {
            None => println!(
                "watching {addr} every {interval}s (qps = interval request delta; \
                 --count N to stop after N lines)"
            ),
            Some((then, before)) => {
                let dt = now.duration_since(then).as_secs_f64().max(1e-9);
                println!(
                    "qps={:.1} p99_us={} hit_rate={:.3} prune_ratio={:.3} \
                     queue_depth={} inflight={} requests={}",
                    (requests - before).max(0.0) / dt,
                    num("p99_us") as u64,
                    num("hit_rate"),
                    num("prune_ratio"),
                    num("queue_depth") as i64,
                    num("inflight") as i64,
                    requests as u64,
                );
                printed += 1;
                if count > 0 && printed >= count {
                    return Ok(());
                }
            }
        }
        prev = Some((now, requests));
        std::thread::sleep(std::time::Duration::from_secs_f64(interval));
    }
}

fn cmd_topk(flags: &Flags) -> Result<(), String> {
    let corpus = load_corpus_arena(flags)?;
    let measure = load_measure(flags)?;
    let mdp = mdp_from_flags(flags)?;
    let algo = load_algo(flags, mdp)?;
    let query = load_query(flags)?;
    let k: usize = flags.parse_or("k", 10)?;
    let use_index = match flags.get("index").unwrap_or("rtree") {
        "rtree" => true,
        "none" => false,
        other => return Err(format!("unknown index '{other}' (rtree|none)")),
    };
    // `--no-prune` forces the reference scan (every candidate searched);
    // answers are byte-identical either way — only the timing and the
    // prune counters change.
    let prune = !flags.switch("no-prune") && simsub::core::pruning_enabled();
    // Sharded and single layouts return byte-identical hits; `--shards`
    // exists on `topk` to exercise (and time) the fan-out offline.
    let (hits, stats, corpus_len, layout) = match sharding_from_flags(flags)? {
        Some((shards, partitioner)) => {
            let db = ShardedDb::from_arena(corpus, shards, partitioner);
            let (hits, stats) = db.top_k_with_stats(
                algo.as_ref(),
                measure.as_ref(),
                query.points(),
                k,
                use_index,
                prune,
            );
            (
                hits,
                stats,
                db.len(),
                format!("{}x{}", shards, partitioner.name()),
            )
        }
        None => {
            let db = TrajectoryDb::from_arena(corpus);
            let (hits, stats) = db.top_k_with_stats(
                algo.as_ref(),
                measure.as_ref(),
                query.points(),
                k,
                use_index,
                prune,
            );
            (hits, stats, db.len(), "single".to_string())
        }
    };
    println!(
        "top-{k} by {} over {} ({} trajectories, layout={layout}, index={}, prune={}):",
        algo.name(),
        measure.name(),
        corpus_len,
        if use_index { "rtree" } else { "none" },
        if prune { "on" } else { "off" }
    );
    for (rank, hit) in hits.iter().enumerate() {
        println!(
            "  #{:<3} trajectory {:<6} [{}..{}]  distance {:.6}",
            rank + 1,
            hit.trajectory_id,
            hit.result.range.start,
            hit.result.range.end,
            hit.result.distance
        );
    }
    println!(
        "scan: {} scanned, {} pruned (kim {}, mbr {}), {} searched — prune ratio {:.1}%",
        stats.scanned,
        stats.pruned(),
        stats.pruned_by_kim,
        stats.pruned_by_mbr,
        stats.searched,
        stats.prune_ratio() * 100.0
    );
    Ok(())
}
