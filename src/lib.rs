//! # SimSub — similar subtrajectory search with deep reinforcement learning
//!
//! A from-scratch Rust reproduction of Wang, Long, Cong & Liu,
//! *Efficient and Effective Similar Subtrajectory Search with Deep
//! Reinforcement Learning* (VLDB 2020). Given a data trajectory `T` and a
//! query trajectory `Tq`, find the contiguous portion of `T` most similar
//! to `Tq` under an abstract similarity measure.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | contents |
//! |--------|----------|
//! | [`trajectory`] | points, trajectories, subtrajectory ranges, MBRs |
//! | [`measures`] | DTW, discrete Frechet, learned t2vec-style measure, incremental evaluators |
//! | [`nn`] | minimal MLP/GRU/Adam substrate with hand-derived backprop |
//! | [`rl`] | DQN with experience replay |
//! | [`core`] | ExactS, SizeS, PSS/POS/POS-D, RLS, RLS-Skip, Spring, UCR, Random-S, SimTra, metrics, top-k |
//! | [`index`] | R-tree over trajectory MBRs, indexed database |
//! | [`data`] | seeded synthetic Porto/Harbin/Sports-like generators |
//! | [`service`] | concurrent query engine: worker pool, micro-batching, LRU result cache, newline-JSON server (`simsub serve`) |
//!
//! ## Quickstart
//!
//! ```
//! use simsub::core::{ExactS, Pss, SubtrajSearch};
//! use simsub::measures::Dtw;
//! use simsub::trajectory::Point;
//!
//! // A data trajectory with an embedded match for the query.
//! let data: Vec<Point> = [(9.0, 9.0), (0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (7.0, -3.0)]
//!     .iter().map(|&(x, y)| Point::xy(x, y)).collect();
//! let query: Vec<Point> = [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]
//!     .iter().map(|&(x, y)| Point::xy(x, y)).collect();
//!
//! let exact = ExactS.search(&Dtw, &data, &query);
//! assert_eq!((exact.range.start, exact.range.end), (1, 3));
//! assert!(exact.distance < 1e-12);
//!
//! // The greedy splitting heuristic is approximate but never better
//! // than the exact optimum.
//! let approx = Pss.search(&Dtw, &data, &query);
//! assert!(approx.distance + 1e-9 >= exact.distance);
//! ```
//!
//! Training an RLS policy end-to-end (see `examples/train_rls.rs` for a
//! full walkthrough):
//!
//! ```
//! use simsub::core::{train_rls, MdpConfig, Rls, RlsTrainConfig, SubtrajSearch};
//! use simsub::data::{generate, DatasetSpec};
//! use simsub::measures::Dtw;
//!
//! let corpus = generate(&DatasetSpec::porto(), 16, 42);
//! let cfg = RlsTrainConfig::paper(MdpConfig::rls(), 10);
//! let report = train_rls(&Dtw, &corpus, &corpus, &cfg);
//! let rls = Rls::new(report.policy, MdpConfig::rls());
//! let res = rls.search(&Dtw, corpus[0].points(), &corpus[1].points()[..10]);
//! assert!(res.similarity > 0.0);
//! ```

pub use simsub_core as core;
pub use simsub_data as data;
pub use simsub_index as index;
pub use simsub_measures as measures;
pub use simsub_nn as nn;
pub use simsub_rl as rl;
pub use simsub_service as service;
pub use simsub_trajectory as trajectory;
