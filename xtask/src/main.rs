//! `cargo xtask` — workspace automation entry point.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => xtask::lint::run(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask command: {other}\n");
            eprintln!("{}", xtask::USAGE);
            ExitCode::FAILURE
        }
        None => {
            eprintln!("{}", xtask::USAGE);
            ExitCode::FAILURE
        }
    }
}
