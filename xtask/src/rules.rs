//! The lint rules and their path scopes.

use std::path::Path;

use crate::scan::scan;
use crate::Violation;

/// Rule id: no direct `std::sync` in facade-covered crates.
pub const STD_SYNC_IMPORT: &str = "std-sync-import";
/// Rule id: no `lock().unwrap()`-style poison handling on the serve path.
pub const LOCK_UNWRAP: &str = "lock-unwrap";
/// Rule id: no wall clocks inside DP kernels.
pub const KERNEL_CLOCK: &str = "kernel-clock";
/// Rule id: atomics orderings need a `// ordering:` justification.
pub const ORDERING_COMMENT: &str = "ordering-comment";

/// Directories scanned by `lint_root`, relative to the repo root. Scoping
/// the walk (rather than walking the whole tree) keeps fixture files and
/// vendored shims out of the default run.
pub const SCOPED_DIRS: &[&str] = &[
    "crates/service/src",
    "crates/core/src",
    "crates/measures/src",
    // The vendored epoll shim backs the reactor io-model: it is leaf
    // code below the sync facade (so std-sync-import does not apply),
    // but lock handling and atomics orderings in it are serve-path
    // concerns like any other.
    "crates/shims/polling/src",
];

/// A lint rule: a path predicate plus a checker.
pub struct Rule {
    /// Stable rule identifier.
    pub id: &'static str,
    /// Whether the rule applies to this repo-relative path.
    pub applies: fn(&Path) -> bool,
    /// Appends violations for `content` to `out`.
    pub check: fn(&Path, &str, &mut Vec<Violation>),
}

/// Every rule, in reporting order.
pub const ALL: &[Rule] = &[
    Rule {
        id: STD_SYNC_IMPORT,
        applies: applies_std_sync,
        check: check_std_sync,
    },
    Rule {
        id: LOCK_UNWRAP,
        applies: applies_lock_unwrap,
        check: check_lock_unwrap,
    },
    Rule {
        id: KERNEL_CLOCK,
        applies: applies_kernel_clock,
        check: check_kernel_clock,
    },
    Rule {
        id: ORDERING_COMMENT,
        applies: applies_ordering,
        check: check_ordering,
    },
];

fn norm(path: &Path) -> String {
    path.to_string_lossy().replace('\\', "/")
}

fn in_dirs(path: &Path, dirs: &[&str]) -> bool {
    let p = norm(path);
    dirs.iter().any(|d| p.starts_with(d))
}

// ---------------------------------------------------------------------------
// std-sync-import
// ---------------------------------------------------------------------------

fn applies_std_sync(path: &Path) -> bool {
    let p = norm(path);
    in_dirs(path, &["crates/service/src", "crates/core/src"])
        // The facade modules themselves are the one sanctioned spot.
        && !p.ends_with("/sync.rs")
}

fn check_std_sync(path: &Path, content: &str, out: &mut Vec<Violation>) {
    let (stream, views) = scan(content);
    for line in stream.find_all("std::sync::") {
        push(out, STD_SYNC_IMPORT, path, line, &views,
            "direct std::sync use in a facade-covered crate; import from the crate's `sync` facade so `--cfg simsub_loom` can swap in the model checker");
    }
}

// ---------------------------------------------------------------------------
// lock-unwrap
// ---------------------------------------------------------------------------

fn applies_lock_unwrap(path: &Path) -> bool {
    in_dirs(path, &["crates/service/src"])
}

fn check_lock_unwrap(path: &Path, content: &str, out: &mut Vec<Violation>) {
    let (stream, views) = scan(content);
    // `.read()`/`.write()` with *empty* parens are RwLock acquisitions;
    // io::Read/Write calls always take arguments, so they never match.
    for acquire in [".lock()", ".read()", ".write()"] {
        for handler in [".unwrap()", ".expect(", ".unwrap_or_else("] {
            let needle = format!("{acquire}{handler}");
            for line in stream.find_all(&needle) {
                push(out, LOCK_UNWRAP, path, line, &views,
                    "poisoned-lock handling inline on the serve path; use the named recovery helpers (fault::lock_recover / read_recover / write_recover)");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// kernel-clock
// ---------------------------------------------------------------------------

fn applies_kernel_clock(path: &Path) -> bool {
    in_dirs(path, &["crates/measures/src", "crates/core/src"])
}

fn check_kernel_clock(path: &Path, content: &str, out: &mut Vec<Violation>) {
    let (stream, views) = scan(content);
    for needle in ["Instant::now", "SystemTime"] {
        for line in stream.find_all(needle) {
            push(out, KERNEL_CLOCK, path, line, &views,
                "wall-clock read inside kernel code; timing belongs in the scan driver behind an explicit gate so kernels stay deterministic");
        }
    }
}

// ---------------------------------------------------------------------------
// ordering-comment
// ---------------------------------------------------------------------------

fn applies_ordering(path: &Path) -> bool {
    in_dirs(path, &["crates/service/src", "crates/core/src"])
}

/// How far above the use an `// ordering:` comment may sit (in lines).
const ORDERING_COMMENT_REACH: usize = 2;

fn check_ordering(path: &Path, content: &str, out: &mut Vec<Violation>) {
    let (_, views) = scan(content);
    for (idx, view) in views.iter().enumerate() {
        if !(view.code.contains("Ordering::SeqCst") || view.code.contains("Ordering::Relaxed")) {
            continue;
        }
        let lo = idx.saturating_sub(ORDERING_COMMENT_REACH);
        let justified = views[lo..=idx]
            .iter()
            .any(|v| v.comment.contains("ordering:"));
        if !justified {
            push(out, ORDERING_COMMENT, path, idx + 1, &views,
                "SeqCst/Relaxed use without a `// ordering:` justification within 2 lines; say why this ordering is (in)sufficient");
        }
    }
}

// ---------------------------------------------------------------------------

fn push(
    out: &mut Vec<Violation>,
    rule: &'static str,
    path: &Path,
    line: usize,
    views: &[crate::scan::LineView<'_>],
    message: &str,
) {
    let text = views
        .get(line - 1)
        .map(|v| v.raw.trim().to_string())
        .unwrap_or_default();
    out.push(Violation {
        rule,
        path: path.to_path_buf(),
        line,
        text,
        message: message.to_string(),
    });
}
