//! Repo-specific static analysis for the simsub workspace.
//!
//! `cargo xtask lint` enforces invariants that rustc and clippy cannot see
//! because they are conventions of *this* codebase:
//!
//! - [`rules::STD_SYNC_IMPORT`]: facade-covered crates must route sync
//!   primitives through their `sync` facade module (which swaps in the
//!   loom shim under `--cfg simsub_loom`), never `std::sync` directly.
//! - [`rules::LOCK_UNWRAP`]: serve-path code must not unwrap/expect a
//!   poisoned lock — poison recovery goes through the named helpers in
//!   `fault.rs` (`lock_recover` and friends) so the policy is greppable.
//! - [`rules::KERNEL_CLOCK`]: DP kernels must not read wall clocks;
//!   timing hooks live in the scan driver, behind explicit gates.
//! - [`rules::ORDERING_COMMENT`]: every `Ordering::SeqCst` /
//!   `Ordering::Relaxed` use carries a `// ordering:` justification within
//!   two lines, so atomics-ordering decisions are documented at the site
//!   the model checker's relaxed-reliance report points at.
//!
//! False positives are suppressed via `xtask/lint-allow.txt`; every entry
//! names the rule, a path suffix, and (optionally) a substring of the
//! offending line, so entries survive line-number churn.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

pub mod lint;
pub mod rules;
pub mod scan;

/// CLI usage, shared by `main` and error paths.
pub const USAGE: &str = "usage: cargo xtask lint [--allowlist <file>] [<repo-root>]";

/// One lint finding, pointing at a specific file and line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (stable, used in allowlist entries).
    pub rule: &'static str,
    /// Path relative to the repo root.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub text: String,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message,
            self.text
        )
    }
}

/// One allowlist entry: `rule path-suffix [line-substring]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule identifier the entry applies to.
    pub rule: String,
    /// Matched against the end of the violation's path.
    pub path_suffix: String,
    /// When present, must also be a substring of the offending line.
    pub line_contains: Option<String>,
}

/// Parses the allowlist format: one entry per line, `#` comments,
/// whitespace-separated fields (rule, path suffix, optional substring —
/// the substring may itself contain spaces).
pub fn parse_allowlist(content: &str) -> Vec<AllowEntry> {
    content
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|line| {
            let mut parts = line.splitn(3, char::is_whitespace);
            let rule = parts.next()?.to_string();
            let path_suffix = parts.next()?.to_string();
            let line_contains = parts.next().map(|s| s.trim().to_string());
            Some(AllowEntry {
                rule,
                path_suffix,
                line_contains,
            })
        })
        .collect()
}

/// Whether `v` is suppressed by any allowlist entry.
pub fn is_allowed(v: &Violation, allow: &[AllowEntry]) -> bool {
    let path = v.path.to_string_lossy().replace('\\', "/");
    allow.iter().any(|a| {
        a.rule == v.rule
            && path.ends_with(&a.path_suffix)
            && a.line_contains
                .as_ref()
                .map(|s| v.text.contains(s.as_str()))
                .unwrap_or(true)
    })
}

/// Lints a single file's content. `rel` is the path relative to the repo
/// root; rules scope themselves by path.
pub fn lint_file(rel: &Path, content: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    for rule in rules::ALL {
        if (rule.applies)(rel) {
            (rule.check)(rel, content, &mut out);
        }
    }
    out
}

/// Recursively lints every `.rs` file under the scoped directories of
/// `root`, returning unsuppressed violations.
pub fn lint_root(root: &Path, allow: &[AllowEntry]) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    for dir in rules::SCOPED_DIRS {
        let abs = root.join(dir);
        if abs.is_dir() {
            collect_rs(&abs, &mut files)?;
        }
    }
    files.sort();
    let mut out = Vec::new();
    for file in files {
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        let content = std::fs::read_to_string(&file)?;
        out.extend(
            lint_file(&rel, &content)
                .into_iter()
                .filter(|v| !is_allowed(v, allow)),
        );
    }
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Entry point used by both the binary and tests: returns success iff the
/// tree is clean.
pub fn run_lint(root: &Path, allowlist: &Path) -> ExitCode {
    let allow = match std::fs::read_to_string(allowlist) {
        Ok(content) => parse_allowlist(&content),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => {
            eprintln!("xtask lint: cannot read {}: {e}", allowlist.display());
            return ExitCode::FAILURE;
        }
    };
    match lint_root(root, &allow) {
        Ok(violations) if violations.is_empty() => {
            println!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!("xtask lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::FAILURE
        }
    }
}
