//! CLI plumbing for `cargo xtask lint`.

use std::path::PathBuf;
use std::process::ExitCode;

/// Runs the lint command. Accepts `--allowlist <file>` and an optional
/// repo root (defaults to the workspace root via `CARGO_MANIFEST_DIR`).
pub fn run(args: &[String]) -> ExitCode {
    let mut allowlist: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--allowlist" => match it.next() {
                Some(path) => allowlist = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--allowlist requires a file argument\n{}", crate::USAGE);
                    return ExitCode::FAILURE;
                }
            },
            other if root.is_none() && !other.starts_with('-') => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("unknown lint argument: {other}\n{}", crate::USAGE);
                return ExitCode::FAILURE;
            }
        }
    }
    let root = root.unwrap_or_else(default_root);
    let allowlist = allowlist.unwrap_or_else(|| root.join("xtask/lint-allow.txt"));
    crate::run_lint(&root, &allowlist)
}

/// The workspace root: parent of this crate's manifest dir when running
/// under cargo, the current directory otherwise.
fn default_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let dir = PathBuf::from(dir);
            dir.parent().map(PathBuf::from).unwrap_or(dir)
        }
        None => PathBuf::from("."),
    }
}
