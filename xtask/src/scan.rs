//! Token-level source scanning without a parser dependency.
//!
//! The linter needs two views of a file:
//!
//! 1. A *code stream*: the source with comments and string literals
//!    blanked out and all whitespace removed, each remaining character
//!    tagged with its 1-based line. Substring search over this stream
//!    matches token sequences even when they span lines
//!    (e.g. `.lock()\n.unwrap_or_else(`).
//! 2. Per-line *code/comment splits*, for rules about the comments
//!    themselves (the `// ordering:` justification rule).

/// The source with strings/comments removed: `chars[i]` is a code
/// character, `lines[i]` its 1-based source line.
pub struct CodeStream {
    /// Code characters with all whitespace removed.
    pub chars: Vec<char>,
    /// Parallel 1-based line number for each character.
    pub lines: Vec<usize>,
}

impl CodeStream {
    /// Finds every occurrence of `needle` (itself whitespace-free),
    /// returning the source line where each match starts.
    pub fn find_all(&self, needle: &str) -> Vec<usize> {
        let needle: Vec<char> = needle.chars().collect();
        let mut out = Vec::new();
        if needle.is_empty() || self.chars.len() < needle.len() {
            return out;
        }
        for start in 0..=(self.chars.len() - needle.len()) {
            if self.chars[start..start + needle.len()] == needle[..] {
                out.push(self.lines[start]);
            }
        }
        out
    }
}

/// One source line split at the first line-comment marker outside a
/// string.
pub struct LineView<'a> {
    /// Code portion (may still contain string literals, blanked).
    pub code: String,
    /// Comment portion including the `//`, empty if none.
    pub comment: String,
    /// The raw line, untouched.
    pub raw: &'a str,
}

enum State {
    Normal,
    InString { raw_hashes: Option<usize> },
    InBlockComment { depth: usize },
}

/// Scans the file once, producing both views. The tokenizer understands
/// line/block comments (nested), double-quoted and raw strings, char
/// literals (including `'"'`), and leaves lifetimes alone.
pub fn scan(content: &str) -> (CodeStream, Vec<LineView<'_>>) {
    let mut stream = CodeStream {
        chars: Vec::new(),
        lines: Vec::new(),
    };
    let mut views: Vec<LineView<'_>> = Vec::new();
    let mut state = State::Normal;

    for (idx, raw) in content.lines().enumerate() {
        let line_no = idx + 1;
        let chars: Vec<char> = raw.chars().collect();
        let mut code = String::new();
        let mut comment = String::new();
        let mut i = 0;
        while i < chars.len() {
            match state {
                State::Normal => {
                    let c = chars[i];
                    let next = chars.get(i + 1).copied();
                    if c == '/' && next == Some('/') {
                        comment = chars[i..].iter().collect();
                        break;
                    }
                    if c == '/' && next == Some('*') {
                        state = State::InBlockComment { depth: 1 };
                        i += 2;
                        continue;
                    }
                    if c == 'r'
                        && (next == Some('"') || next == Some('#'))
                        && looks_like_raw_string(&chars, i)
                    {
                        let hashes = count_hashes(&chars, i + 1);
                        if chars.get(i + 1 + hashes) == Some(&'"') {
                            state = State::InString {
                                raw_hashes: Some(hashes),
                            };
                            code.push(' ');
                            i += 2 + hashes;
                            continue;
                        }
                    }
                    if c == '"' {
                        state = State::InString { raw_hashes: None };
                        code.push(' ');
                        i += 1;
                        continue;
                    }
                    if c == '\'' {
                        // Char literal vs lifetime: a literal closes with a
                        // tick within a few chars ('x', '\n', '\u{1F600}').
                        if let Some(end) = char_literal_end(&chars, i) {
                            code.push(' ');
                            i = end + 1;
                            continue;
                        }
                    }
                    code.push(c);
                    i += 1;
                }
                State::InString { raw_hashes } => match raw_hashes {
                    None => {
                        if chars[i] == '\\' {
                            i += 2;
                        } else if chars[i] == '"' {
                            state = State::Normal;
                            i += 1;
                        } else {
                            i += 1;
                        }
                    }
                    Some(hashes) => {
                        if chars[i] == '"' && closes_raw(&chars, i, hashes) {
                            state = State::Normal;
                            i += 1 + hashes;
                        } else {
                            i += 1;
                        }
                    }
                },
                State::InBlockComment { depth } => {
                    let next = chars.get(i + 1).copied();
                    if chars[i] == '*' && next == Some('/') {
                        state = if depth == 1 {
                            State::Normal
                        } else {
                            State::InBlockComment { depth: depth - 1 }
                        };
                        i += 2;
                    } else if chars[i] == '/' && next == Some('*') {
                        state = State::InBlockComment { depth: depth + 1 };
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
        }
        // A non-raw string literal cannot span lines unless escaped; be
        // lenient and stay in-string (multiline strings exist via `\`).
        for c in code.chars().filter(|c| !c.is_whitespace()) {
            stream.chars.push(c);
            stream.lines.push(line_no);
        }
        views.push(LineView { code, comment, raw });
    }
    (stream, views)
}

fn looks_like_raw_string(chars: &[char], i: usize) -> bool {
    // `r"..."` or `r#"..."#`; avoid matching identifiers ending in r by
    // requiring the previous char to be a non-identifier char.
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    true
}

fn count_hashes(chars: &[char], mut i: usize) -> usize {
    let mut n = 0;
    while chars.get(i) == Some(&'#') {
        n += 1;
        i += 1;
    }
    n
}

fn closes_raw(chars: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'))
}

fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    // chars[i] == '\''. Simple forms: 'x', '\n', '\\', '\'', '\u{...}'.
    let second = chars.get(i + 1)?;
    if *second == '\\' {
        // Escape: find the closing quote within a bounded window
        // (unicode escapes are the longest: '\u{10FFFF}').
        (i + 3..(i + 13).min(chars.len())).find(|&j| chars[j] == '\'')
    } else if chars.get(i + 2) == Some(&'\'') {
        Some(i + 2)
    } else {
        None // lifetime like 'a or 'static
    }
}
