//! End-to-end linter tests over seeded fixture trees.
//!
//! `tests/fixtures/` mirrors the scoped directory layout
//! (`crates/*/src`) with files that deliberately violate each rule —
//! plus in-comment/in-string decoys that must *not* fire. The tests pin
//! the exact (rule, file, line) set so a regression in the scanner or a
//! rule's scope shows up as a diff, not a green run.

use std::path::{Path, PathBuf};

use xtask::rules::{KERNEL_CLOCK, LOCK_UNWRAP, ORDERING_COMMENT, STD_SYNC_IMPORT};
use xtask::{is_allowed, lint_root, parse_allowlist, AllowEntry, Violation};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Sorted (rule, path, line) keys for set comparison.
fn keys(violations: &[Violation]) -> Vec<(String, String, usize)> {
    let mut out: Vec<_> = violations
        .iter()
        .map(|v| {
            (
                v.rule.to_string(),
                v.path.to_string_lossy().replace('\\', "/"),
                v.line,
            )
        })
        .collect();
    out.sort();
    out
}

fn expected() -> Vec<(String, String, usize)> {
    let mut want: Vec<(String, String, usize)> = [
        (STD_SYNC_IMPORT, "crates/service/src/bad.rs", 3),
        (LOCK_UNWRAP, "crates/service/src/bad.rs", 6),
        (LOCK_UNWRAP, "crates/service/src/bad.rs", 10),
        (LOCK_UNWRAP, "crates/service/src/bad.rs", 15),
        (ORDERING_COMMENT, "crates/service/src/bad.rs", 19),
        (ORDERING_COMMENT, "crates/service/src/bad.rs", 26),
        (KERNEL_CLOCK, "crates/core/src/kernel.rs", 3),
        (KERNEL_CLOCK, "crates/measures/src/clocked.rs", 3),
        (KERNEL_CLOCK, "crates/measures/src/clocked.rs", 4),
    ]
    .into_iter()
    .map(|(r, p, l)| (r.to_string(), p.to_string(), l))
    .collect();
    want.sort();
    want
}

#[test]
fn each_rule_fires_at_the_seeded_file_and_line_and_decoys_stay_silent() {
    let violations = lint_root(&fixtures_root(), &[]).unwrap();
    assert_eq!(keys(&violations), expected());
}

#[test]
fn cross_line_match_reports_the_line_where_the_acquisition_starts() {
    let violations = lint_root(&fixtures_root(), &[]).unwrap();
    let v = violations
        .iter()
        .find(|v| v.rule == LOCK_UNWRAP && v.line == 10)
        .expect("cross-line lock-unwrap violation");
    assert_eq!(v.text, "*m.lock()");
}

#[test]
fn facade_module_is_exempt_from_the_std_sync_rule() {
    let violations = lint_root(&fixtures_root(), &[]).unwrap();
    assert!(
        violations
            .iter()
            .all(|v| !v.path.to_string_lossy().ends_with("sync.rs")),
        "facade fixture must not produce violations"
    );
}

#[test]
fn allowlist_suppresses_by_rule_and_path() {
    let allow = parse_allowlist("lock-unwrap service/src/bad.rs\n");
    let violations = lint_root(&fixtures_root(), &allow).unwrap();
    let got = keys(&violations);
    assert!(got.iter().all(|(r, _, _)| r != LOCK_UNWRAP));
    assert_eq!(got.len(), expected().len() - 3);
}

#[test]
fn allowlist_substring_narrows_to_single_sites() {
    // Suppress only the SeqCst ordering violation (line 19), not the
    // Relaxed one (line 26) in the same file.
    let allow = parse_allowlist("ordering-comment service/src/bad.rs Ordering::SeqCst\n");
    let violations = lint_root(&fixtures_root(), &allow).unwrap();
    let ordering: Vec<usize> = violations
        .iter()
        .filter(|v| v.rule == ORDERING_COMMENT)
        .map(|v| v.line)
        .collect();
    assert_eq!(ordering, vec![26]);
}

#[test]
fn allowlist_parser_skips_comments_and_keeps_spaced_substrings() {
    let entries = parse_allowlist(
        "# a comment\n\n  kernel-clock core/src/topk.rs Instant :: now\nlock-unwrap fault.rs\n",
    );
    assert_eq!(
        entries,
        vec![
            AllowEntry {
                rule: "kernel-clock".into(),
                path_suffix: "core/src/topk.rs".into(),
                line_contains: Some("Instant :: now".into()),
            },
            AllowEntry {
                rule: "lock-unwrap".into(),
                path_suffix: "fault.rs".into(),
                line_contains: None,
            },
        ]
    );
}

#[test]
fn is_allowed_requires_all_three_fields_to_match() {
    let v = Violation {
        rule: "lock-unwrap",
        path: PathBuf::from("crates/service/src/fault.rs"),
        line: 396,
        text: "lock.lock()".to_string(),
        message: String::new(),
    };
    let hit = parse_allowlist("lock-unwrap service/src/fault.rs lock.\n");
    let wrong_rule = parse_allowlist("kernel-clock service/src/fault.rs lock.\n");
    let wrong_path = parse_allowlist("lock-unwrap service/src/engine.rs lock.\n");
    let wrong_text = parse_allowlist("lock-unwrap service/src/fault.rs unwrap_or_else\n");
    assert!(is_allowed(&v, &hit));
    assert!(!is_allowed(&v, &wrong_rule));
    assert!(!is_allowed(&v, &wrong_path));
    assert!(!is_allowed(&v, &wrong_text));
}

/// The committed tree must be clean under the committed allowlist — the
/// same invariant CI enforces by running `cargo xtask lint`.
#[test]
fn repo_tree_is_clean_under_committed_allowlist() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits under the repo root")
        .to_path_buf();
    let allow = parse_allowlist(
        &std::fs::read_to_string(root.join("xtask/lint-allow.txt")).expect("committed allowlist"),
    );
    let violations = lint_root(&root, &allow).unwrap();
    assert!(
        violations.is_empty(),
        "workspace has lint violations:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
