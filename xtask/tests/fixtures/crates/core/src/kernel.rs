// Kernel fixture: wall clocks are banned in core/measures sources.
fn timed() -> u64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos() as u64
}
