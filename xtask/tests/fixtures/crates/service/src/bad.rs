// Seeded lint violations — fixture for xtask/tests/lint_fixtures.rs.
// Never compiled: it only has to *scan* like Rust.
use std::sync::Mutex;

fn inline_unwrap(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}

fn cross_line(m: &Mutex<u32>) -> u32 {
    *m.lock()
        .expect("poisoned")
}

fn recover_inline(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(|e| e.into_inner())
}

fn naked_ordering(flag: &AtomicBool) -> bool {
    flag.load(Ordering::SeqCst)
}

fn stale_comment(flag: &AtomicBool) -> bool {
    // ordering: relaxed — this justification is one line out of reach.
    //
    //
    flag.load(Ordering::Relaxed)
}

// None of the matches below may fire: they sit in comments or strings.
// .lock().unwrap() — comment
const DOC: &str = "use std::sync::Mutex; m.lock().unwrap(); Ordering::SeqCst";

fn justified(flag: &AtomicBool) -> bool {
    // ordering: SeqCst — a fixture justification inside reach.
    flag.load(Ordering::SeqCst)
}

fn io_read_takes_args_and_is_fine(r: &mut impl std::io::Read, buf: &mut [u8]) {
    r.read(buf).unwrap();
}
