// Facade fixture: `sync.rs` is the one sanctioned home for std::sync in
// a facade-covered crate, so nothing here may fire.
pub use std::sync::Mutex;
