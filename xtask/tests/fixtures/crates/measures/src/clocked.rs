// Measures fixture: SystemTime is a kernel-clock violation here (both
// on the signature line and the call line)...
fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

// ...but lock-unwrap and std-sync-import are scoped to other crates, so
// neither may fire in this file.
fn out_of_scope(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}
