//! Quickstart: the SimSub problem on a toy instance — the Figure 1
//! running example of the paper.
//!
//! Run with: `cargo run --release --example quickstart`

use simsub::core::{ExactS, Pos, Pss, SizeS, Spring, SubtrajSearch};
use simsub::measures::{Dtw, Frechet, Measure};
use simsub::trajectory::Point;

fn main() {
    // The Figure 1 instance: a 5-point data trajectory whose middle
    // portion T[2,4] (1-based) is the best match for the 3-point query.
    let data: Vec<Point> = [(0.0, 3.0), (0.0, 1.0), (2.0, 1.0), (4.0, 1.0), (4.0, 3.0)]
        .iter()
        .map(|&(x, y)| Point::xy(x, y))
        .collect();
    let query: Vec<Point> = [(0.0, 0.0), (2.0, 0.0), (4.0, 0.0)]
        .iter()
        .map(|&(x, y)| Point::xy(x, y))
        .collect();

    println!("data   : {} points", data.len());
    println!("query  : {} points", query.len());
    println!();

    let algos: Vec<(&str, Box<dyn SubtrajSearch>)> = vec![
        ("ExactS (exact)", Box::new(ExactS)),
        ("SizeS  (size window)", Box::new(SizeS::new(1))),
        ("PSS    (greedy split)", Box::new(Pss)),
        ("POS    (prefix only)", Box::new(Pos)),
        ("Spring (DTW-specific)", Box::new(Spring::new())),
    ];

    for (name, measure) in [("DTW", &Dtw as &dyn Measure), ("Frechet", &Frechet)] {
        println!("--- measure: {name} ---");
        for (label, algo) in &algos {
            let res = algo.search(measure, &data, &query);
            println!(
                "{label:24} -> T[{}, {}]  distance {:.3}  similarity {:.3}",
                res.range.start + 1, // print 1-based like the paper
                res.range.end + 1,
                res.distance,
                res.similarity,
            );
        }
        println!();
    }

    println!("Note how the greedy splitters can return T[3,3]: they split");
    println!("too early and destroy the optimal T[2,4] — the failure mode");
    println!("that motivates the learned splitting policy (RLS).");
}
