//! End-to-end RLS training (Algorithm 3) and head-to-head evaluation
//! against the non-learning algorithms — a miniature of Figure 3.
//!
//! Run with: `cargo run --release --example train_rls`

use simsub::core::{
    exhaustive_ranking, train_rls, EffectivenessMetrics, ExactS, MdpConfig, MetricsAccumulator,
    Pos, PosD, Pss, Rls, RlsTrainConfig, SizeS, SubtrajSearch,
};
use simsub::data::{generate, sample_pairs, DatasetSpec};
use simsub::measures::Dtw;

fn main() {
    // Corpus and workload.
    let corpus = generate(&DatasetSpec::porto(), 250, 11);
    let train_queries: Vec<_> = corpus
        .iter()
        .map(|t| {
            let len = t.len().min(25);
            simsub::trajectory::Trajectory::new_unchecked(t.id, t.points()[..len].to_vec())
        })
        .collect();

    // Train RLS and RLS-Skip with the paper's hyperparameters.
    for mdp in [MdpConfig::rls(), MdpConfig::rls_skip(3)] {
        let episodes = 1000;
        println!(
            "training {} for {episodes} episodes...",
            mdp.algorithm_name()
        );
        let report = train_rls(
            &Dtw,
            &corpus,
            &train_queries,
            &RlsTrainConfig::paper(mdp, episodes),
        );
        println!(
            "  stored {} transitions, final TD loss {:.5}",
            report.transitions, report.final_loss
        );
        let rls = Rls::new(report.policy, mdp);

        // Evaluate against the heuristics on held-out pairs.
        let pairs = sample_pairs(&corpus, 60, 25, 999);
        let algos: Vec<(&str, &dyn SubtrajSearch)> = vec![
            ("SizeS(5)", &SizeS { xi: 5 }),
            ("PSS", &Pss),
            ("POS", &Pos),
            ("POS-D(5)", &PosD { delay: 5 }),
            (
                if mdp.skip_actions == 0 {
                    "RLS"
                } else {
                    "RLS-Skip"
                },
                &rls,
            ),
        ];
        let mut accs: Vec<MetricsAccumulator> =
            algos.iter().map(|_| MetricsAccumulator::new()).collect();
        for pair in &pairs {
            let data = corpus[pair.data_idx].points();
            let query = pair.query.points();
            let ranking = exhaustive_ranking(&Dtw, data, query);
            for ((_, algo), acc) in algos.iter().zip(&mut accs) {
                let res = algo.search(&Dtw, data, query);
                acc.add(EffectivenessMetrics::evaluate(&ranking, res.range));
            }
            // Exact is rank 1 by construction; sanity-check one pair.
            debug_assert_eq!(
                EffectivenessMetrics::evaluate(&ranking, ExactS.search(&Dtw, data, query).range).mr,
                1.0
            );
        }
        println!("  {:<12} {:>7} {:>9} {:>8}", "algorithm", "AR", "MR", "RR");
        for ((name, _), acc) in algos.iter().zip(&accs) {
            let m = acc.mean();
            println!(
                "  {:<12} {:>7.3} {:>9.2} {:>7.2}%",
                name,
                m.ar,
                m.mr,
                m.rr * 100.0
            );
        }
        // Persist the trained policy and reload it, as a deployment
        // (train offline, serve online) would.
        use simsub::nn::BinaryCodec;
        let path = std::env::temp_dir().join(format!("simsub_policy_k{}.ssub", mdp.skip_actions));
        rls.policy().save(&path).expect("write policy");
        let loaded = simsub::rl::Policy::load(&path).expect("load policy");
        let rls_loaded = Rls::new(loaded, mdp);
        let probe_data = corpus[3].points();
        let probe_query = &corpus[4].points()[..20];
        assert_eq!(
            rls.search(&Dtw, probe_data, probe_query).range,
            rls_loaded.search(&Dtw, probe_data, probe_query).range,
            "persisted policy must behave identically"
        );
        println!("  policy persisted to {} and reloaded OK", path.display());
        std::fs::remove_file(&path).ok();
        println!();
    }
    println!("Expected shape (paper Fig. 3): RLS beats the hand-crafted");
    println!("heuristics on AR/MR/RR; RLS-Skip trades a little quality");
    println!("for speed by skipping points.");
}
