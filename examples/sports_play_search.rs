//! Sports play retrieval — the first motivating application of the
//! paper's introduction: find the segment of recorded plays whose
//! movement is most similar to a query play, using the learned t2vec-style
//! measure (which is what makes cross-sampling-rate matching work).
//!
//! Run with: `cargo run --release --example sports_play_search`

use rand::rngs::StdRng;
use rand::SeedableRng;
use simsub::core::{ExactS, Pss, SubtrajSearch};
use simsub::data::{extract_query, generate, DatasetSpec};
use simsub::measures::{Measure, T2Vec, T2VecConfig};

fn main() {
    let spec = DatasetSpec::sports();
    let plays = generate(&spec, 60, 2024);
    println!(
        "generated {} player tracks at 10 Hz (mean length ~{} points)",
        plays.len(),
        spec.mean_len
    );

    // Train the learned measure on the play corpus: embeddings are pulled
    // together for resampled variants of the same movement, apart for
    // different plays.
    let cfg = T2VecConfig {
        steps: 300,
        ..Default::default()
    };
    println!("training t2vec-style encoder ({} steps)...", cfg.steps);
    let (t2vec, separation) = T2Vec::train(&plays, &cfg);
    println!("training separation diagnostic: {separation:.2}");

    // The query play: a coach sketches a movement equal to a historical
    // segment, but tracked at a lower sampling rate (half the points).
    let mut rng = StdRng::seed_from_u64(7);
    let query = extract_query(&plays[17], 40, 0.5, 0.3, &mut rng);
    println!("query play: {} points (downsampled + noisy)", query.len());

    // Search every play for its best-matching segment.
    let mut results: Vec<(usize, simsub::core::SearchResult)> = plays
        .iter()
        .enumerate()
        .map(|(i, play)| (i, Pss.search(&t2vec, play.points(), query.points())))
        .collect();
    results.sort_by(|a, b| b.1.similarity.total_cmp(&a.1.similarity));

    println!("\ntop-5 plays by best segment similarity (PSS over t2vec):");
    for (i, res) in results.iter().take(5) {
        println!(
            "  play {:>2}  segment [{:>3}..{:>3}]  embedding distance {:.3}",
            i, res.range.start, res.range.end, res.distance
        );
    }

    // The source play should win; verify with the exact algorithm too.
    let (best_play, _) = results[0];
    println!("\nbest play = {best_play} (query was cut from play 17)");
    assert_eq!(best_play, 17, "the source play should rank first");

    let exact = ExactS.search(&t2vec, plays[17].points(), query.points());
    println!(
        "ExactS on the winning play: segment [{}..{}], distance {:.3} \
         (PSS found distance {:.3})",
        exact.range.start, exact.range.end, exact.distance, results[0].1.distance
    );
    assert!(results[0].1.distance + 1e-9 >= exact.distance);

    // Sanity: the learned measure behaves like a measure.
    let d_self = t2vec.distance(query.points(), query.points());
    assert!(d_self.abs() < 1e-12);
}
