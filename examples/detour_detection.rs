//! Detour-route detection — the second motivating application of the
//! paper's introduction: given a route reported as a detour, find taxi
//! trajectories containing a subtrajectory similar to it.
//!
//! Pipeline: generate a Porto-like taxi corpus, plant a known "detour"
//! inside a few trajectories, index everything in an R-tree database, and
//! run a top-k similar subtrajectory query with the detour as the query
//! trajectory.
//!
//! Run with: `cargo run --release --example detour_detection`

use rand::rngs::StdRng;
use rand::SeedableRng;
use simsub::core::Pss;
use simsub::data::{extract_query, generate, DatasetSpec};
use simsub::index::TrajectoryDb;
use simsub::measures::Dtw;
use simsub::trajectory::Trajectory;

fn main() {
    let spec = DatasetSpec::porto();
    let mut corpus = generate(&spec, 300, 99);
    println!(
        "generated {} taxi trajectories (mean length ~{})",
        corpus.len(),
        spec.mean_len
    );

    // The reported detour: a 20-point segment of trajectory 7, slightly
    // perturbed (GPS noise), as a passenger's report would be.
    let mut rng = StdRng::seed_from_u64(1);
    let detour = extract_query(&corpus[7], 20, 0.1, spec.extent * 0.001, &mut rng);
    println!(
        "detour query: {} points from the area of trajectory 7",
        detour.len()
    );

    // Plant the same detour into two more trajectories (other taxis that
    // took the same detour), splicing it into their point sequences.
    for (slot, victim) in [(100usize, 0u64), (200, 1)] {
        let host = &corpus[slot];
        let mut points = host.points()[..host.len() / 2].to_vec();
        let t_off = points.last().map(|p| p.t).unwrap_or(0.0);
        for (i, p) in detour.points().iter().enumerate() {
            let mut p = *p;
            p.t = t_off + (i + 1) as f64 * spec.sampling_interval;
            points.push(p);
        }
        let back_half: Vec<_> = host.points()[host.len() / 2..]
            .iter()
            .map(|p| {
                let mut p = *p;
                p.t += detour.len() as f64 * spec.sampling_interval;
                p
            })
            .collect();
        points.extend(back_half);
        corpus[slot] = Trajectory::new_unchecked(host.id, points);
        let _ = victim;
    }

    let db = TrajectoryDb::build(corpus);
    println!(
        "indexed {} trajectories / {} points",
        db.len(),
        db.total_points()
    );

    // Top-5 search with the R-tree pruning on, using the PSS splitting
    // heuristic (fast) under DTW.
    let hits = db.top_k(&Pss, &Dtw, detour.points(), 5, true);
    println!("\ntop-5 suspected detour trajectories (PSS, DTW, R-tree pruned):");
    for (rank, hit) in hits.iter().enumerate() {
        println!(
            "  #{}  trajectory {:>3}  subtrajectory [{}..{}]  DTW {:.1}",
            rank + 1,
            hit.trajectory_id,
            hit.result.range.start,
            hit.result.range.end,
            hit.result.distance,
        );
    }

    // The planted hosts (ids of slots 100, 200) and the source (7) should
    // dominate the ranking.
    let top_ids: Vec<u64> = hits.iter().map(|h| h.trajectory_id).collect();
    let expected: Vec<u64> = vec![db.view(7).id, db.view(100).id, db.view(200).id];
    let found = expected.iter().filter(|id| top_ids.contains(id)).count();
    println!("\n{found}/3 planted detour carriers appear in the top-5.");
    assert!(found >= 2, "expected the planted detours to rank highly");
}
