//! Embedding the query-serving subsystem in-process: start a
//! [`QueryEngine`] over a *sharded* corpus snapshot, fire a burst of
//! concurrent queries, and read the serving stats. Answers are
//! byte-identical to an unsharded snapshot (checked below against the
//! offline single-database search).
//!
//! Run with `cargo run --release --example query_service`.

use simsub::core::Pss;
use simsub::data::{generate, DatasetSpec};
use simsub::index::{PartitionerKind, ShardedDb, TrajectoryDb};
use simsub::measures::Dtw;
use simsub::service::{
    AlgoSpec, CorpusSnapshot, EngineConfig, MeasureSpec, QueryEngine, QueryRequest,
};
use std::sync::Arc;

fn main() {
    // An immutable corpus snapshot shared by all workers — here split
    // into 4 hash shards, each with its own R-tree; queries fan out
    // across shards and merge through the shared ranking function.
    let corpus = generate(&DatasetSpec::porto(), 200, 7);
    let db = TrajectoryDb::build(corpus.clone()).into_shared();
    let sharded = ShardedDb::build(corpus, 4, PartitionerKind::Hash).into_shared();
    let engine = Arc::new(QueryEngine::start(
        CorpusSnapshot::sharded(Arc::clone(&sharded)),
        EngineConfig {
            workers: 4,
            max_batch: 16,
            cache_capacity: 1024,
            ..EngineConfig::default()
        },
    ));
    println!(
        "engine up: {} trajectories, {} points, {} shards, 4 workers",
        sharded.len(),
        sharded.total_points(),
        sharded.shard_count()
    );

    // A client burst: 32 threads, half of them asking the same question.
    let handles: Vec<_> = (0..32)
        .map(|i| {
            let engine = Arc::clone(&engine);
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                let source = db.view(if i % 2 == 0 { 0 } else { i % db.len() });
                let request = QueryRequest {
                    query: source.to_points()[..12.min(source.len())].to_vec(),
                    algo: AlgoSpec::Pss,
                    measure: MeasureSpec::Dtw,
                    k: 5,
                    use_index: true,
                };
                let response = engine.query(request).expect("engine answered");
                (i, response)
            })
        })
        .collect();

    for handle in handles {
        let (i, response) = handle.join().expect("client thread");
        // The sharded engine's answer equals the offline single-database
        // search, bit for bit.
        let source = db.view(if i % 2 == 0 { 0 } else { i % db.len() });
        let offline = db.top_k(
            &Pss,
            &Dtw,
            &source.to_points()[..12.min(source.len())],
            5,
            true,
        );
        assert_eq!(*response.results, offline, "sharded answer diverged");
        let best = response.results.first().expect("k >= 1");
        println!(
            "client {i:>2}: best trajectory {:>3} [{}..{}] dist {:.4} \
             (cached: {}, batch of {}, {} µs)",
            best.trajectory_id,
            best.result.range.start,
            best.result.range.end,
            best.result.distance,
            response.cached,
            response.batch_size,
            response.latency.as_micros()
        );
    }

    let stats = engine.stats();
    println!(
        "served {} requests — hit rate {:.0}%, mean batch {:.1}, p50 {} µs, p99 {} µs; \
         cold scans pruned {}/{} candidate evaluations ({:.0}%) via the bound cascade",
        stats.requests,
        stats.hit_rate * 100.0,
        stats.mean_batch,
        stats.p50_us,
        stats.p99_us,
        stats.scan_pruned,
        stats.scan_candidates,
        stats.prune_ratio * 100.0
    );

    // Live reload: hot-swap the serving snapshot to a *fresh corpus*
    // without restarting the engine. In-flight queries would finish
    // against the old epoch; everything admitted from here on sees the
    // new snapshot — and the epoch-keyed result cache never replays a
    // stale answer.
    let fresh = generate(&DatasetSpec::porto(), 120, 8);
    let fresh_db = TrajectoryDb::build(fresh.clone()).into_shared();
    let report = engine.swap_snapshot(simsub::service::CorpusSnapshot::sharded(
        ShardedDb::build(fresh, 4, PartitionerKind::Hash).into_shared(),
    ));
    println!(
        "hot-swapped to {} trajectories: epoch {} -> {}, {} stale cache entries purged",
        report.trajectories, report.previous_epoch, report.epoch, report.cache_evicted
    );
    let query = fresh_db.view(0).to_points()[..10].to_vec();
    let response = engine
        .query(QueryRequest {
            query: query.clone(),
            algo: AlgoSpec::Pss,
            measure: MeasureSpec::Dtw,
            k: 3,
            use_index: true,
        })
        .expect("post-swap query");
    assert_eq!(response.epoch, report.epoch);
    assert_eq!(
        *response.results,
        fresh_db.top_k(&Pss, &Dtw, &query, 3, true),
        "post-swap answer diverged from the offline search on the new corpus"
    );
    println!(
        "post-swap query answered from epoch {} — byte-identical to the offline search",
        response.epoch
    );
    engine.shutdown();
}
