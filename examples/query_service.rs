//! Embedding the query-serving subsystem in-process: start a
//! [`QueryEngine`] over a corpus snapshot, fire a burst of concurrent
//! queries, and read the serving stats.
//!
//! Run with `cargo run --release --example query_service`.

use simsub::data::{generate, DatasetSpec};
use simsub::index::TrajectoryDb;
use simsub::service::{
    AlgoSpec, CorpusSnapshot, EngineConfig, MeasureSpec, QueryEngine, QueryRequest,
};
use std::sync::Arc;

fn main() {
    // An immutable corpus snapshot shared by all workers.
    let corpus = generate(&DatasetSpec::porto(), 200, 7);
    let db = TrajectoryDb::build(corpus).into_shared();
    let engine = Arc::new(QueryEngine::start(
        CorpusSnapshot::new(Arc::clone(&db)),
        EngineConfig {
            workers: 4,
            max_batch: 16,
            cache_capacity: 1024,
        },
    ));
    println!(
        "engine up: {} trajectories, {} points, 4 workers",
        db.len(),
        db.total_points()
    );

    // A client burst: 32 threads, half of them asking the same question.
    let handles: Vec<_> = (0..32)
        .map(|i| {
            let engine = Arc::clone(&engine);
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                let source = &db.trajectories()[if i % 2 == 0 { 0 } else { i % db.len() }];
                let request = QueryRequest {
                    query: source.points()[..12.min(source.len())].to_vec(),
                    algo: AlgoSpec::Pss,
                    measure: MeasureSpec::Dtw,
                    k: 5,
                    use_index: true,
                };
                let response = engine.query(request).expect("engine answered");
                (i, response)
            })
        })
        .collect();

    for handle in handles {
        let (i, response) = handle.join().expect("client thread");
        let best = response.results.first().expect("k >= 1");
        println!(
            "client {i:>2}: best trajectory {:>3} [{}..{}] dist {:.4} \
             (cached: {}, batch of {}, {} µs)",
            best.trajectory_id,
            best.result.range.start,
            best.result.range.end,
            best.result.distance,
            response.cached,
            response.batch_size,
            response.latency.as_micros()
        );
    }

    let stats = engine.stats();
    println!(
        "served {} requests — hit rate {:.0}%, mean batch {:.1}, p50 {} µs, p99 {} µs",
        stats.requests,
        stats.hit_rate * 100.0,
        stats.mean_batch,
        stats.p50_us,
        stats.p99_us
    );
    engine.shutdown();
}
